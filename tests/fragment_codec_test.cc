// Fragment codec property/fuzz suite (the serialization layer under the
// fragment store's persistent cold tier, docs/FRAGMENT_PERSISTENCE.md).
//
// Two contracts are hammered here:
//   1. Round-trip bit identity: for >= 10k randomized fragments — ±∞
//      costs, duplicate-cost ties, order-tag permutations, empty
//      frontiers included — decode(encode(x)) reproduces every field
//      exactly (IEEE-754 bit patterns compared as bits) and
//      encode(decode(bytes)) reproduces the bytes. The second half is
//      what makes the on-disk format canonical: compaction can move
//      records without rewriting them.
//   2. Hostile bytes never crash: truncations at *every* byte boundary,
//      flipped length prefixes, stale version tags, bit flips, and
//      garbage must come back as Status (or kTruncated/kCorrupt for the
//      log framing) — never a crash, MOQO_CHECK, or over-read. ASan/TSan
//      CI runs this binary; mirror of the net_test hostile-frame
//      harness.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/wire.h"
#include "service/fragment_codec.h"
#include "service/fragment_store.h"
#include "util/rng.h"

namespace moqo {
namespace {

constexpr int kTrials = 10000;

// Bit-exact double comparison: NaN == NaN when the payloads match, and
// +0.0 != -0.0 — the equality the "bit-identical" contract means.
bool SameBits(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  std::memcpy(&ab, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ab == bb;
}

double RandomCost(Rng* rng) {
  // Mix finite magnitudes with the special values the Pareto machinery
  // actually produces (±∞ bounds) plus negative zero and NaN (hostile
  // but must still round-trip bit-exactly).
  const uint64_t kind = rng->Uniform(16);
  switch (kind) {
    case 0:
      return std::numeric_limits<double>::infinity();
    case 1:
      return -std::numeric_limits<double>::infinity();
    case 2:
      return -0.0;
    case 3:
      return std::numeric_limits<double>::quiet_NaN();
    case 4:
      return std::numeric_limits<double>::denorm_min();
    default:
      return (rng->UniformDouble(0.0, 1.0) - 0.5) *
             std::pow(10.0, static_cast<double>(rng->Uniform(20)) - 10.0);
  }
}

FragmentPlan RandomPlan(Rng* rng, int dims) {
  FragmentPlan plan;
  plan.cost = CostVector(dims);
  for (int i = 0; i < dims; ++i) plan.cost.data()[i] = RandomCost(rng);
  plan.output_rows = RandomCost(rng);
  plan.op.is_scan = rng->Uniform(2) == 0;
  plan.op.alg = static_cast<uint8_t>(rng->Uniform(256));
  plan.op.workers = static_cast<uint8_t>(rng->Uniform(256));
  plan.op.sampling_permille = static_cast<uint16_t>(rng->Uniform(65536));
  plan.order = static_cast<uint8_t>(rng->Uniform(256));
  plan.resolution = static_cast<uint8_t>(rng->Uniform(256));
  return plan;
}

// A fragment with the shapes the store really publishes: empty
// frontiers, duplicate-cost ties (the same cost vector under different
// order tags — chronological order must survive), and permuted order
// tags.
StoredFragment RandomFragment(Rng* rng, FragmentRecord* record) {
  StoredFragment fragment;
  fragment.resolution_complete = static_cast<int>(rng->Uniform(12));
  const int dims = static_cast<int>(rng->Uniform(kMaxMetrics + 1));  // 0..6
  const size_t plans = rng->Uniform(20);  // Often small, sometimes empty.
  for (size_t i = 0; i < plans; ++i) {
    fragment.plans.push_back(RandomPlan(rng, dims));
    if (i > 0 && rng->Uniform(4) == 0) {
      // Duplicate-cost tie: same costs as the previous plan, different
      // order tag. Both rows and their relative order must survive.
      FragmentPlan tie = fragment.plans[fragment.plans.size() - 2];
      tie.order = static_cast<uint8_t>(rng->Uniform(256));
      fragment.plans.back() = tie;
    }
  }
  record->key = "f1;e=" + std::to_string(rng->Uniform(100)) + ";k=" +
                std::to_string(rng->Uniform(1u << 30));
  if (rng->Uniform(8) == 0) record->key.clear();  // Hostile-ish: empty key.
  record->epoch = rng->Uniform(1u << 20);
  record->catalog_version = rng->Uniform(1u << 20);
  record->resolution_complete = fragment.resolution_complete;
  return fragment;
}

void ExpectPlanEq(const FragmentPlan& a, const FragmentPlan& b) {
  ASSERT_EQ(a.cost.dims(), b.cost.dims());
  for (int i = 0; i < a.cost.dims(); ++i) {
    EXPECT_TRUE(SameBits(a.cost.at(i), b.cost.at(i)));
  }
  EXPECT_TRUE(SameBits(a.output_rows, b.output_rows));
  EXPECT_EQ(a.op.is_scan, b.op.is_scan);
  EXPECT_EQ(a.op.alg, b.op.alg);
  EXPECT_EQ(a.op.workers, b.op.workers);
  EXPECT_EQ(a.op.sampling_permille, b.op.sampling_permille);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.resolution, b.resolution);
}

// --- Property suite: randomized round trips. ---

TEST(FragmentCodecPropertyTest, TenThousandRoundTripsBitIdentical) {
  Rng rng(20260808);
  for (int trial = 0; trial < kTrials; ++trial) {
    FragmentRecord record;
    const StoredFragment fragment = RandomFragment(&rng, &record);
    const std::string bytes = EncodeFragmentRecord(record, fragment);

    FragmentRecord decoded_record;
    StoredFragment decoded;
    ASSERT_TRUE(DecodeFragmentRecord(bytes, &decoded_record, &decoded).ok())
        << "trial " << trial;
    EXPECT_EQ(decoded_record.key, record.key);
    EXPECT_EQ(decoded_record.epoch, record.epoch);
    EXPECT_EQ(decoded_record.catalog_version, record.catalog_version);
    EXPECT_EQ(decoded_record.resolution_complete, record.resolution_complete);
    ASSERT_EQ(decoded.plans.size(), fragment.plans.size());
    EXPECT_EQ(decoded.resolution_complete, fragment.resolution_complete);
    for (size_t i = 0; i < fragment.plans.size(); ++i) {
      ExpectPlanEq(fragment.plans[i], decoded.plans[i]);
    }

    // Canonical encoding: re-encoding the decoded fragment reproduces
    // the input byte for byte.
    const std::string re = EncodeFragmentRecord(decoded_record, decoded);
    ASSERT_EQ(re, bytes) << "trial " << trial;
  }
}

TEST(FragmentCodecPropertyTest, EmptyFrontierRoundTrips) {
  FragmentRecord record;
  record.key = "empty";
  record.epoch = 7;
  record.catalog_version = 3;
  record.resolution_complete = 5;
  StoredFragment fragment;
  fragment.resolution_complete = 5;
  const std::string bytes = EncodeFragmentRecord(record, fragment);
  FragmentRecord out_record;
  StoredFragment out;
  ASSERT_TRUE(DecodeFragmentRecord(bytes, &out_record, &out).ok());
  EXPECT_TRUE(out.plans.empty());
  EXPECT_EQ(out.resolution_complete, 5);
  EXPECT_EQ(EncodeFragmentRecord(out_record, out), bytes);
}

TEST(FragmentCodecPropertyTest, EpochRecordRoundTrips) {
  for (uint64_t epoch : {0ull, 1ull, 127ull, 128ull, 1ull << 40,
                         ~0ull}) {
    const std::string bytes = EncodeEpochRecord(epoch);
    uint64_t out = 0;
    ASSERT_TRUE(DecodeEpochRecord(bytes, &out).ok());
    EXPECT_EQ(out, epoch);
    EXPECT_EQ(EncodeEpochRecord(out), bytes);
  }
}

// --- Hostile bytes: every decoder returns Status, never crashes. ---

TEST(FragmentCodecHostileTest, TruncationAtEveryBoundaryReturnsStatus) {
  Rng rng(99);
  FragmentRecord record;
  const StoredFragment fragment = RandomFragment(&rng, &record);
  const std::string bytes = EncodeFragmentRecord(record, fragment);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string truncated = bytes.substr(0, cut);
    FragmentRecord out_record;
    StoredFragment out;
    EXPECT_FALSE(DecodeFragmentRecord(truncated, &out_record, &out).ok())
        << "cut at " << cut << " of " << bytes.size();
  }
}

TEST(FragmentCodecHostileTest, TrailingGarbageRejected) {
  FragmentRecord record;
  record.key = "k";
  StoredFragment fragment;
  std::string bytes = EncodeFragmentRecord(record, fragment);
  bytes.push_back('\0');
  FragmentRecord out_record;
  StoredFragment out;
  EXPECT_FALSE(DecodeFragmentRecord(bytes, &out_record, &out).ok());
}

TEST(FragmentCodecHostileTest, StaleVersionTagRejected) {
  FragmentRecord record;
  record.key = "k";
  StoredFragment fragment;
  std::string bytes = EncodeFragmentRecord(record, fragment);
  for (int v = 0; v < 256; ++v) {
    if (v == kFragmentCodecVersion) continue;
    bytes[0] = static_cast<char>(v);
    FragmentRecord out_record;
    StoredFragment out;
    EXPECT_FALSE(DecodeFragmentRecord(bytes, &out_record, &out).ok())
        << "version " << v;
  }
}

TEST(FragmentCodecHostileTest, OutOfRangeDimsRejected) {
  Rng rng(7);
  FragmentRecord record;
  StoredFragment fragment;
  fragment.plans.push_back(RandomPlan(&rng, 2));
  std::string bytes = EncodeFragmentRecord(record, fragment);
  // The plan's dims byte is the first byte after the varint plan count;
  // find it by re-encoding the prefix.
  net::Writer prefix;
  prefix.PutU8(kFragmentCodecVersion);
  prefix.PutVarint(record.epoch);
  prefix.PutVarint(record.catalog_version);
  prefix.PutVarint(static_cast<uint64_t>(record.resolution_complete));
  prefix.PutStr(record.key);
  prefix.PutVarint(fragment.plans.size());
  const size_t dims_at = prefix.bytes().size();
  ASSERT_EQ(static_cast<uint8_t>(bytes[dims_at]), 2u);
  for (int dims = kMaxMetrics + 1; dims < 256; ++dims) {
    bytes[dims_at] = static_cast<char>(dims);
    FragmentRecord out_record;
    StoredFragment out;
    EXPECT_FALSE(DecodeFragmentRecord(bytes, &out_record, &out).ok())
        << "dims " << dims;
  }
}

TEST(FragmentCodecHostileTest, HugePlanCountRejectedBeforeAllocation) {
  // A record claiming 2^40 plans in a few bytes must be rejected by the
  // payload-capacity check, not die in a reserve() of terabytes.
  net::Writer w;
  w.PutU8(kFragmentCodecVersion);
  w.PutVarint(0);  // epoch
  w.PutVarint(0);  // catalog_version
  w.PutVarint(0);  // resolution_complete
  w.PutStr("k");
  w.PutVarint(uint64_t{1} << 40);  // plan count
  FragmentRecord out_record;
  StoredFragment out;
  EXPECT_FALSE(DecodeFragmentRecord(w.bytes(), &out_record, &out).ok());
}

TEST(FragmentCodecHostileTest, RandomBitFlipsNeverCrash) {
  Rng rng(4242);
  for (int trial = 0; trial < kTrials; ++trial) {
    FragmentRecord record;
    const StoredFragment fragment = RandomFragment(&rng, &record);
    std::string bytes = EncodeFragmentRecord(record, fragment);
    if (bytes.empty()) continue;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(bytes.size());
      bytes[pos] = static_cast<char>(static_cast<uint8_t>(bytes[pos]) ^
                                     (1u << rng.Uniform(8)));
    }
    FragmentRecord out_record;
    StoredFragment out;
    // Either outcome is fine — the only contract is no crash/over-read,
    // and on success a canonical re-encode.
    if (DecodeFragmentRecord(bytes, &out_record, &out).ok()) {
      EXPECT_EQ(EncodeFragmentRecord(out_record, out), bytes);
    }
  }
}

TEST(FragmentCodecHostileTest, PureGarbageNeverCrashes) {
  Rng rng(777);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string bytes;
    const size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    FragmentRecord out_record;
    StoredFragment out;
    (void)DecodeFragmentRecord(bytes, &out_record, &out);
    uint64_t epoch = 0;
    (void)DecodeEpochRecord(bytes, &epoch);
  }
}

// --- Varint primitives (shared with the wire layer). ---

TEST(FragmentCodecVarintTest, NonMinimalEncodingRejected) {
  // 1 encoded as [0x81, 0x00] decodes to the same value but is not the
  // minimal form; accepting it would break encode(decode(x)) == x.
  std::string bytes;
  bytes.push_back(static_cast<char>(0x81));
  bytes.push_back(static_cast<char>(0x00));
  net::Reader r(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(r.GetVarint(&v).ok());
}

TEST(FragmentCodecVarintTest, OverflowRejected) {
  // 11 continuation bytes: longer than any 64-bit varint.
  std::string bytes(11, static_cast<char>(0xFF));
  net::Reader r(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(r.GetVarint(&v).ok());
  // Exactly 10 bytes but with bit 64+ set in the last byte.
  std::string max(9, static_cast<char>(0xFF));
  max.push_back(static_cast<char>(0x02));
  net::Reader r2(max);
  EXPECT_FALSE(r2.GetVarint(&v).ok());
}

TEST(FragmentCodecVarintTest, BoundaryValuesRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     (1ull << 35) - 1, 1ull << 35, ~0ull}) {
    net::Writer w;
    w.PutVarint(v);
    net::Reader r(w.bytes());
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

// --- Log framing. ---

TEST(FragmentLogFramingTest, RecordRoundTrips) {
  std::string log;
  AppendLogRecord(&log, LogRecordType::kFragment, "payload-bytes");
  AppendLogRecord(&log, LogRecordType::kEpoch, "");
  uint8_t type = 0;
  std::string payload;
  size_t advance = 0;
  ASSERT_EQ(ParseLogRecord(log.data(), log.size(), &type, &payload, &advance),
            LogParse::kRecord);
  EXPECT_EQ(type, static_cast<uint8_t>(LogRecordType::kFragment));
  EXPECT_EQ(payload, "payload-bytes");
  const size_t first = advance;
  ASSERT_EQ(ParseLogRecord(log.data() + first, log.size() - first, &type,
                           &payload, &advance),
            LogParse::kRecord);
  EXPECT_EQ(type, static_cast<uint8_t>(LogRecordType::kEpoch));
  EXPECT_EQ(payload, "");
  EXPECT_EQ(first + advance, log.size());
}

TEST(FragmentLogFramingTest, TruncationAtEveryBoundaryIsTornTail) {
  std::string log;
  AppendLogRecord(&log, LogRecordType::kFragment, "some payload");
  for (size_t cut = 0; cut < log.size(); ++cut) {
    uint8_t type = 0;
    std::string payload;
    size_t advance = 0;
    // A prefix of a valid record is kTruncated when the header is cut,
    // or kTruncated (short body) once the header is whole — never
    // kRecord, and never a crash or over-read.
    EXPECT_NE(ParseLogRecord(log.data(), cut, &type, &payload, &advance),
              LogParse::kRecord)
        << "cut " << cut;
  }
}

TEST(FragmentLogFramingTest, FlippedLengthPrefixIsCorrupt) {
  std::string log;
  AppendLogRecord(&log, LogRecordType::kFragment, "some payload");
  uint8_t type = 0;
  std::string payload;
  size_t advance = 0;
  {
    // Length beyond the hard ceiling: corrupt, not a giant allocation.
    std::string flipped = log;
    const uint32_t huge = kMaxFragmentRecordBytes + 1;
    std::memcpy(&flipped[0], &huge, 4);
    EXPECT_EQ(ParseLogRecord(flipped.data(), flipped.size(), &type, &payload,
                             &advance),
              LogParse::kCorrupt);
  }
  {
    // Zero length: corrupt (a record always has its type byte).
    std::string flipped = log;
    const uint32_t zero = 0;
    std::memcpy(&flipped[0], &zero, 4);
    EXPECT_EQ(ParseLogRecord(flipped.data(), flipped.size(), &type, &payload,
                             &advance),
              LogParse::kCorrupt);
  }
  {
    // Plausible-but-wrong length: the CRC catches it.
    std::string flipped = log;
    uint32_t len = 0;
    std::memcpy(&len, flipped.data(), 4);
    len -= 1;
    std::memcpy(&flipped[0], &len, 4);
    EXPECT_EQ(ParseLogRecord(flipped.data(), flipped.size(), &type, &payload,
                             &advance),
              LogParse::kCorrupt);
  }
}

TEST(FragmentLogFramingTest, BodyBitFlipFailsCrc) {
  std::string log;
  AppendLogRecord(&log, LogRecordType::kFragment, "some payload");
  for (size_t pos = 8; pos < log.size(); ++pos) {
    std::string flipped = log;
    flipped[pos] = static_cast<char>(static_cast<uint8_t>(flipped[pos]) ^ 1);
    uint8_t type = 0;
    std::string payload;
    size_t advance = 0;
    EXPECT_EQ(ParseLogRecord(flipped.data(), flipped.size(), &type, &payload,
                             &advance),
              LogParse::kCorrupt)
        << "pos " << pos;
  }
}

TEST(FragmentLogFramingTest, Crc32KnownVector) {
  // The classic check value: CRC-32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(s.data(), s.size()), 0xCBF43926u);
}

}  // namespace
}  // namespace moqo
