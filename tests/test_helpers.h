// Shared fixtures for optimizer-level tests.
#ifndef MOQO_TESTS_TEST_HELPERS_H_
#define MOQO_TESTS_TEST_HELPERS_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "index/cell_index.h"
#include "plan/cost_model.h"
#include "query/generator.h"
#include "query/query.h"
#include "util/rng.h"

namespace moqo {

// Operator options small enough that exhaustive plan enumeration stays
// tractable on 2-4 table queries.
inline OperatorOptions TinyOperatorOptions(bool sampling) {
  OperatorOptions options;
  options.max_workers = 2;
  options.max_sampling_rates_per_table = sampling ? 1 : 0;
  options.enable_index_scans = true;
  options.enable_sort_merge = true;
  options.enable_nested_loop = true;
  return options;
}

// A random query world owning its catalog and factory.
struct RandomWorld {
  std::unique_ptr<Catalog> catalog;
  Query query;
  std::unique_ptr<PlanFactory> factory;
};

inline RandomWorld MakeRandomWorld(uint64_t seed, int num_tables,
                                   bool sampling,
                                   MetricSchema schema = MetricSchema::Standard3()) {
  RandomWorld world;
  world.catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  GeneratorOptions gen;
  gen.num_tables = num_tables;
  gen.topology = Topology::kRandomTree;
  gen.min_cardinality = 1000.0;
  gen.max_cardinality = 1e6;
  world.query = RandomQuery(rng, gen, world.catalog.get());
  world.factory = std::make_unique<PlanFactory>(
      world.query, *world.catalog, std::move(schema), CostModelParams{},
      TinyOperatorOptions(sampling));
  return world;
}

inline std::vector<CostVector> CostsOf(
    const std::vector<CellIndex::Entry>& entries) {
  std::vector<CostVector> costs;
  costs.reserve(entries.size());
  for (const auto& e : entries) costs.push_back(e.cost);
  return costs;
}

// Sorted (lexicographic) cost vectors of a result frontier, with the
// plans' interesting-order and resolution tags folded in, for exact
// ("bit-identical") frontier equality assertions.
inline std::vector<std::vector<double>> FrontierSignature(
    const std::vector<CellIndex::Entry>& entries) {
  std::vector<std::vector<double>> sig;
  sig.reserve(entries.size());
  for (const CellIndex::Entry& e : entries) {
    std::vector<double> row;
    row.reserve(static_cast<size_t>(e.cost.dims()) + 2);
    for (int i = 0; i < e.cost.dims(); ++i) row.push_back(e.cost[i]);
    row.push_back(static_cast<double>(e.order));
    row.push_back(static_cast<double>(e.resolution));
    sig.push_back(std::move(row));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace moqo

#endif  // MOQO_TESTS_TEST_HELPERS_H_
