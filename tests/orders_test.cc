// Tests for the interesting-tuple-orders extension (paper §4.3): index
// scans and sort-merge joins produce sorted output, pre-sorted inputs
// skip their sort phase, and pruning is partitioned by produced order.
#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/exhaustive.h"
#include "baseline/one_shot.h"
#include "catalog/tpch.h"
#include "core/incremental_optimizer.h"
#include "pareto/coverage.h"
#include "query/tpch_queries.h"
#include "test_helpers.h"

namespace moqo {
namespace {

OperatorOptions OrderedOptions(bool orders) {
  OperatorOptions options = TinyOperatorOptions(/*sampling=*/false);
  options.enable_interesting_orders = orders;
  return options;
}

TEST(OrdersCostModelTest, IndexScanProducesOrderWhenEnabled) {
  RandomWorld world = MakeRandomWorld(70, 2, /*sampling=*/false);
  PlanFactory ordered(world.query, *world.catalog,
                      MetricSchema::Standard3(), CostModelParams{},
                      OrderedOptions(true));
  PlanFactory unordered(world.query, *world.catalog,
                        MetricSchema::Standard3(), CostModelParams{},
                        OrderedOptions(false));
  bool saw_ordered_scan = false;
  ordered.ForEachScan(0, [&](const OperatorDesc& op, const OpCost& oc) {
    if (op.scan_alg() == ScanAlg::kIndexScan) {
      EXPECT_GT(oc.order, 0);
      saw_ordered_scan = true;
    } else {
      EXPECT_EQ(oc.order, 0);
    }
  });
  unordered.ForEachScan(0, [&](const OperatorDesc&, const OpCost& oc) {
    EXPECT_EQ(oc.order, 0);
  });
  EXPECT_TRUE(saw_ordered_scan);
}

TEST(OrdersCostModelTest, SortMergeSkipsSortOfPresortedInput) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 2);
  const Query& query = blocks.at(0);
  const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                            CostModelParams{}, OrderedOptions(true));
  const CostModel& model = factory.cost_model();

  // Build two scan nodes for table 0 and 1 at full rate.
  PlanNode scans[2];
  for (int t = 0; t < 2; ++t) {
    factory.ForEachScan(t, [&](const OperatorDesc& op, const OpCost& oc) {
      if (op.scan_alg() == ScanAlg::kSeqScan && op.workers == 1 &&
          op.sampling_permille == 1000) {
        scans[t].tables = TableSet::Singleton(t);
        scans[t].op = op;
        scans[t].cost = oc.cost;
        scans[t].output_cardinality = oc.output_rows;
        scans[t].order = oc.order;
      }
    });
  }
  const double sel = factory.graph().SelectivityBetween(
      TableSet::Singleton(0), TableSet::Singleton(1));
  const OperatorDesc smj = OperatorDesc::Join(JoinAlg::kSortMergeJoin, 1);
  const int merge_order =
      1 + factory.graph().FirstPredicateBetween(TableSet::Singleton(0),
                                                TableSet::Singleton(1));
  ASSERT_GT(merge_order, 0);

  const OpCost unsorted =
      model.JoinCost(scans[0], scans[1], sel, smj, merge_order);
  // Pre-sort the left input on the merge key.
  PlanNode sorted_left = scans[0];
  sorted_left.order = static_cast<uint8_t>(merge_order);
  const OpCost presorted =
      model.JoinCost(sorted_left, scans[1], sel, smj, merge_order);
  // Skipping the left sort strictly reduces time.
  EXPECT_LT(presorted.cost[0], unsorted.cost[0]);
  // Both produce the merge order.
  EXPECT_EQ(unsorted.order, merge_order);
  EXPECT_EQ(presorted.order, merge_order);
  // A hash join produces no order.
  const OpCost hash = model.JoinCost(
      scans[0], scans[1], sel, OperatorDesc::Join(JoinAlg::kHashJoin, 1),
      merge_order);
  EXPECT_EQ(hash.order, 0);
}

TEST(OrdersCostModelTest, MergeOrderZeroWhenDisabled) {
  RandomWorld world = MakeRandomWorld(71, 3, /*sampling=*/false);
  // The default world has orders disabled; all plans must be unordered.
  const auto all =
      EnumerateAllPlanCosts(*world.factory, TableSet::Full(3));
  EXPECT_FALSE(all.empty());
  // (EnumerateAllPlanCosts only returns costs; instead check via factory.)
  EXPECT_FALSE(world.factory->orders_enabled());
}

class OrdersTheorem : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrdersTheorem, CoverageHoldsWithOrdersEnabled) {
  // Theorem 2 per order class implies cost coverage of the full plan
  // space; verified against exhaustive enumeration with orders enabled
  // (sampling disabled so cardinalities are uniform per table set).
  const int n = 3;
  RandomWorld world = MakeRandomWorld(GetParam(), n, /*sampling=*/false);
  PlanFactory factory(world.query, *world.catalog,
                      MetricSchema::Standard3(), CostModelParams{},
                      OrderedOptions(true));
  const ResolutionSchedule schedule(3, 1.03, 0.4);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(factory, schedule, inf);
  const auto reference = EnumerateAllPlanCosts(factory, TableSet::Full(n));
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    opt.Optimize(inf, r);
    const auto result = CostsOf(opt.ResultPlans(inf, r));
    const double factor = std::pow(schedule.Alpha(r), n);
    const auto report = CheckCoverage(result, reference, factor, inf);
    EXPECT_TRUE(report.covered)
        << "seed=" << GetParam() << " r=" << r
        << " worst=" << report.worst_factor;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrdersTheorem,
                         ::testing::Values(401, 402, 403, 404));

TEST(OrdersOptimizerTest, OrdersNeverHurtTheTimeFrontier) {
  // Enabling interesting orders only adds opportunities (sort-merge
  // discounts); the minimal achievable time must not increase.
  const Catalog catalog = MakeTpchCatalog();
  for (const Query& query : TpchBlocksWithTables(catalog, 3)) {
    const ResolutionSchedule schedule(3, 1.01, 0.2);
    const CostVector inf = CostVector::Infinite(3);
    double min_time[2];
    for (int orders = 0; orders < 2; ++orders) {
      const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                                CostModelParams{},
                                OrderedOptions(orders == 1));
      IncrementalOptimizer opt(factory, schedule, inf);
      for (int r = 0; r <= 2; ++r) opt.Optimize(inf, r);
      double best = std::numeric_limits<double>::infinity();
      for (const auto& e : opt.ResultPlans(inf, 2)) {
        best = std::min(best, e.cost[0]);
      }
      min_time[orders] = best;
    }
    // Allow the approximation slack: the ordered run could keep a plan up
    // to alpha^n above its own optimum, but that optimum is itself <=
    // the unordered one.
    const double slack = std::pow(1.01, 3);
    EXPECT_LE(min_time[1], min_time[0] * slack * (1 + 1e-9)) << query.name;
  }
}

TEST(OrdersOptimizerTest, SortMergePlansSurviveInFrontier) {
  // On a query with a large sorted-input advantage, the frontier should
  // retain at least one plan that exploits an interesting order (i.e. a
  // plan with a nonzero order tag or an SMJ whose input order matched).
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  const Query& q3 = blocks.at(0);
  OperatorOptions options = OrderedOptions(true);
  options.max_workers = 2;
  const PlanFactory factory(q3, catalog, MetricSchema::Standard3(),
                            CostModelParams{}, options);
  const ResolutionSchedule schedule(4, 1.005, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(factory, schedule, inf);
  for (int r = 0; r <= 3; ++r) opt.Optimize(inf, r);
  const auto plans = opt.ResultPlans(inf, 3);
  ASSERT_FALSE(plans.empty());
  bool has_ordered = false;
  for (const auto& e : plans) {
    if (opt.arena().at(e.id).order != 0) has_ordered = true;
  }
  EXPECT_TRUE(has_ordered);
}

TEST(OrdersOptimizerTest, IncrementalInvariantsHoldWithOrders) {
  RandomWorld world = MakeRandomWorld(72, 4, /*sampling=*/true);
  PlanFactory factory(world.query, *world.catalog,
                      MetricSchema::Standard3(), CostModelParams{},
                      [] {
                        OperatorOptions o = TinyOperatorOptions(true);
                        o.enable_interesting_orders = true;
                        return o;
                      }());
  const ResolutionSchedule schedule(5, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);
  IncrementalOptimizer opt(factory, schedule, inf);
  for (int r = 0; r <= 4; ++r) opt.Optimize(inf, r);
  EXPECT_EQ(opt.counters().pairs_rejected_stale, 0u);
  EXPECT_EQ(opt.arena().size(), opt.counters().plans_generated);
  // Repeat invocation: no new work.
  const uint64_t before = opt.counters().plans_generated;
  opt.Optimize(inf, 4);
  EXPECT_EQ(opt.counters().plans_generated, before);
}

TEST(OrdersOneShotTest, OrderAwarePruningKeepsOrderedPlans) {
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  const PlanFactory factory(blocks.at(0), catalog,
                            MetricSchema::Standard3(), CostModelParams{},
                            OrderedOptions(true));
  const CostVector inf = CostVector::Infinite(3);
  const OneShotResult result = RunOneShot(factory, 1.05, inf);
  // Partial results for single tables retain ordered scan variants.
  bool ordered_scan_kept = false;
  for (int t = 0; t < 3; ++t) {
    for (PlanId id :
         result.plans_by_mask[TableSet::Singleton(t).mask()]) {
      if (result.arena.at(id).order != 0) ordered_scan_kept = true;
    }
  }
  EXPECT_TRUE(ordered_scan_kept);
}

}  // namespace
}  // namespace moqo
