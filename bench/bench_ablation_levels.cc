// Ablation A: sensitivity to the number of resolution levels rM + 1.
//
// The paper shows (Figures 3/4) that IAMA only outperforms the baselines
// once several resolution levels split optimization into incremental
// steps, and remarks that the precision-factor sequence could be tuned
// further. This bench sweeps the level count on a 6-table TPC-H block and
// reports, per algorithm: total time to reach target precision, average
// and maximal per-invocation time.
#include "bench_common.h"

int main() {
  using namespace moqo;
  using bench::InvocationTimes;

  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 6);
  std::printf("=== Ablation: resolution level count (6-table TPC-H "
              "blocks, alpha_T=1.005, alpha_S=0.5) ===\n\n");
  std::printf("%-8s %-22s %12s %12s %12s\n", "levels", "algorithm",
              "total_ms", "avg_inv_ms", "max_inv_ms");
  for (int levels : {1, 2, 5, 10, 20, 40}) {
    const ResolutionSchedule schedule(levels, 1.005, 0.5);
    InvocationTimes iama_all, memless_all, oneshot_all;
    for (const Query& query : blocks) {
      const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                                CostModelParams{},
                                bench::BenchOperatorOptions());
      for (double v : bench::RunIamaSeries(factory, schedule).ms) {
        iama_all.ms.push_back(v);
      }
      for (double v : bench::RunMemorylessSeries(factory, schedule).ms) {
        memless_all.ms.push_back(v);
      }
      for (double v : bench::RunOneShotOnce(factory, schedule).ms) {
        oneshot_all.ms.push_back(v);
      }
    }
    const auto row = [&](const char* name, const InvocationTimes& t) {
      std::printf("%-8d %-22s %12.3f %12.3f %12.3f\n", levels, name,
                  t.Total(), t.Total() / t.ms.size(), t.Max());
    };
    row("incremental_anytime", iama_all);
    row("memoryless", memless_all);
    row("one_shot", oneshot_all);
  }
  return 0;
}
