// bench_dist_scaling — distributed phase-2 scaling study: wall time per
// query as a function of worker-process count on the same 10-table
// overlapping workload bench_service_throughput sweeps (shared 7-table
// chain core, 3 private tables at a rotating root, Rng seed 77).
//
// Each configuration boots an OptimizerService whose large queries are
// routed to a forked DistributedBackend worker tier; workers = 0 is the
// single-process baseline. Submissions are sequential (the tier holds
// one lease at a time — concurrent waves would just measure the local
// fallback), and every distributed frontier is checked bit-identical to
// the baseline's before a row is reported: a scaling number for a tier
// that changed the answer would be meaningless.
//
// Output: a self-describing table on stdout, plus a `dist` section
// merged into BENCH_service.json in the working directory (created if
// absent, replaced if a previous run already merged one) so the perf
// trajectory is tracked across PRs alongside the service sweep.
//
// Usage:
//   ./build/bench_dist_scaling [--full]
//     --full    larger workload + one more anytime level (machine-scale)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "catalog/tpch.h"
#include "dist/backend.h"
#include "query/query.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

namespace moqo {
namespace {

using Clock = std::chrono::steady_clock;

// Same sizing as bench_service_throughput: moderate per-query
// enumeration so the sweep stays laptop-scale with real per-step work.
OperatorOptions DistBenchOperatorOptions() {
  OperatorOptions options;
  options.max_workers = 4;
  options.max_sampling_rates_per_table = 1;
  return options;
}

// The overlapping 10-table workload (shared chain core + private
// suffix), same construction as bench_service_throughput so the `dist`
// JSON section is comparable with the service sweep rows.
std::vector<Query> OverlappingWorkload(Catalog* catalog, Rng& rng,
                                       int num_queries) {
  constexpr int kCoreTables = 7;
  constexpr int kPrivateTables = 3;
  std::vector<TableId> core_ids;
  std::vector<double> core_selectivities;
  for (int i = 0; i < kCoreTables; ++i) {
    TableDef def;
    def.name = "core" + std::to_string(i);
    def.cardinality = 1000.0 * (1 << (i % 5)) + 500.0 * i;
    core_ids.push_back(catalog->AddTable(def));
    core_selectivities.push_back(i % 2 == 0 ? 0.5 : 1.0);
  }
  std::vector<Query> workload;
  for (int q = 0; q < num_queries; ++q) {
    QueryBuilder b("overlap10_" + std::to_string(q));
    std::vector<int> refs;
    for (int i = 0; i < kCoreTables; ++i) {
      refs.push_back(b.AddTable(core_ids[static_cast<size_t>(i)],
                                core_selectivities[static_cast<size_t>(i)]));
    }
    for (int i = 0; i + 1 < kCoreTables; ++i) {
      b.AddJoin(refs[static_cast<size_t>(i)],
                refs[static_cast<size_t>(i + 1)],
                1.0 / catalog->Get(core_ids[static_cast<size_t>(i + 1)])
                          .cardinality);
    }
    int attach = refs[static_cast<size_t>(q % kCoreTables)];
    for (int i = 0; i < kPrivateTables; ++i) {
      TableDef def;
      def.name = "priv" + std::to_string(q) + "_" + std::to_string(i);
      def.cardinality = rng.UniformDouble(1000.0, 100000.0);
      const int ref = b.AddTable(catalog->AddTable(def),
                                 rng.UniformDouble(0.1, 1.0));
      b.AddJoin(attach, ref, 1.0 / def.cardinality);
      attach = ref;
    }
    workload.push_back(b.Build());
  }
  return workload;
}

// Order-insensitive frontier fingerprint: every plan's cost vector,
// sorted. Two runs are bit-identical iff these compare equal.
std::vector<std::vector<double>> FrontierDigest(
    const FrontierSnapshot& frontier) {
  std::vector<std::vector<double>> digest;
  digest.reserve(frontier.plans.size());
  for (const auto& entry : frontier.plans) {
    std::vector<double> costs;
    costs.reserve(static_cast<size_t>(entry.cost.dims()));
    for (int d = 0; d < entry.cost.dims(); ++d) costs.push_back(entry.cost[d]);
    digest.push_back(std::move(costs));
  }
  std::sort(digest.begin(), digest.end());
  return digest;
}

struct ConfigResult {
  int workers = 0;
  size_t queries = 0;
  double wall_s = 0.0;
  std::vector<double> query_ms;
  uint64_t dist_runs = 0;
  uint64_t dist_rejected = 0;
  std::vector<std::vector<std::vector<double>>> digests;
};

// Runs the workload sequentially through a service; `workers` > 0 forks
// that many worker processes and routes every query (all are 10 tables)
// through the tier. The backend outlives the service, and both are torn
// down before the next configuration so worker processes never stack.
ConfigResult RunConfig(const Catalog& catalog,
                       const std::vector<Query>& workload, int workers,
                       int levels) {
  ServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.num_shards = 2;
  service_options.frontier_cache_capacity = 0;  // Measure real work.
  service_options.coalesce_in_flight = false;
  service_options.operator_options = DistBenchOperatorOptions();

  std::unique_ptr<dist::DistributedBackend> backend;
  if (workers > 0) {
    dist::BackendOptions dist_options;
    dist_options.num_workers = static_cast<uint32_t>(workers);
    dist_options.forked = true;
    dist_options.worker.catalog = catalog.Snapshot();
    dist_options.worker.schema = service_options.schema;
    dist_options.worker.cost_params = service_options.cost_params;
    dist_options.worker.operator_options = service_options.operator_options;
    backend = std::make_unique<dist::DistributedBackend>(dist_options);
    service_options.distributed_backend = backend.get();
    service_options.distributed_min_tables = 3;
  }
  OptimizerService service(catalog, service_options);

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule::Moderate(levels);
  submit.max_iterations = 64;  // Routing requires a step bound.

  ConfigResult result;
  result.workers = workers;
  const Clock::time_point wall_start = Clock::now();
  for (const Query& query : workload) {
    const Clock::time_point submitted = Clock::now();
    const StatusOr<QueryId> id = service.Submit(query, submit);
    MOQO_CHECK(id.ok());
    const QueryResult r = service.Wait(id.value());
    MOQO_CHECK(r.state == QueryState::kDone);
    result.query_ms.push_back(MillisSince(submitted));
    result.digests.push_back(FrontierDigest(r.frontier));
    ++result.queries;
  }
  result.wall_s = MillisSince(wall_start) / 1000.0;
  if (backend != nullptr) {
    result.dist_runs = backend->runs_started();
    result.dist_rejected = backend->runs_rejected();
  }
  return result;
}

// Splices `section` into BENCH_service.json: appended to an existing
// service-sweep file (replacing any previous `dist` section), or
// wrapped in a fresh object when the sweep has not run here yet.
bool MergeDistSection(const std::string& section) {
  const char* path = "BENCH_service.json";
  const std::string marker = ",\n  \"dist\": {";
  std::string json;
  if (std::FILE* f = std::fopen(path, "rb")) {
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
    std::fclose(f);
  }
  const size_t old_section = json.find(marker);
  if (old_section != std::string::npos) {
    json.resize(old_section);  // Re-run: replace the previous section.
  } else {
    const size_t close = json.rfind('}');
    if (close != std::string::npos) {
      json.resize(close);
      while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) {
        json.pop_back();
      }
    } else {
      json = "{\n  \"bench\": \"dist_scaling_only\"";  // No sweep yet.
    }
  }
  json += marker;
  json += section;
  json += "\n}\n";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace
}  // namespace moqo

int main(int argc, char** argv) {
  using namespace moqo;

  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::fprintf(stderr, "usage: bench_dist_scaling [--full]\n");
      return 1;
    }
  }

  const int num_queries = full ? 12 : 6;
  const int levels = full ? 4 : 3;
  Catalog catalog = MakeTpchCatalog();
  Rng rng(77);
  const std::vector<Query> workload =
      OverlappingWorkload(&catalog, rng, num_queries);

  std::printf("# dist scaling: %zu overlapping 10-table queries, "
              "sequential, forked workers\n",
              workload.size());
  std::printf("%8s %8s %8s %8s %12s %10s %10s\n", "workers", "queries",
              "wall_s", "qps", "query_p50_ms", "dist_runs", "rejected");

  // workers = 0 is the single-process baseline every distributed
  // configuration must match bit for bit.
  const ConfigResult baseline = RunConfig(catalog, workload, 0, levels);
  std::string section = "\n    \"workload\": "
                        "\"overlapping_chain_core7_private3\",\n";
  section += "    \"queries\": " + std::to_string(baseline.queries) +
             ", \"levels\": " + std::to_string(levels) + ",\n";
  section += "    \"configs\": [";
  bool first_row = true;
  for (int workers : {0, 1, 2, 4}) {
    const ConfigResult r = workers == 0
                               ? baseline
                               : RunConfig(catalog, workload, workers, levels);
    if (workers > 0) {
      // Bit-identity is the bar: a speedup that changed the frontier
      // would be a bug report, not a benchmark row.
      MOQO_CHECK(r.digests == baseline.digests);
      MOQO_CHECK(r.dist_runs == r.queries);
    }
    const double qps = r.wall_s > 0.0 ? r.queries / r.wall_s : 0.0;
    const double p50 = Percentile(r.query_ms, 0.50);
    std::printf("%8d %8zu %8.3f %8.2f %12.3f %10llu %10llu\n", r.workers,
                r.queries, r.wall_s, qps, p50,
                static_cast<unsigned long long>(r.dist_runs),
                static_cast<unsigned long long>(r.dist_rejected));
    std::fflush(stdout);
    char row[256];
    std::snprintf(
        row, sizeof(row),
        "%s\n      {\"workers\": %d, \"queries\": %zu, \"wall_s\": %.6f, "
        "\"qps\": %.3f, \"query_p50_ms\": %.3f, \"dist_runs\": %llu, "
        "\"dist_rejected\": %llu, \"bit_identical\": true}",
        first_row ? "" : ",", r.workers, r.queries, r.wall_s, qps, p50,
        static_cast<unsigned long long>(r.dist_runs),
        static_cast<unsigned long long>(r.dist_rejected));
    section += row;
    first_row = false;
  }
  section += "\n    ]\n  }";

  if (!MergeDistSection(section)) {
    std::fprintf(stderr, "failed to write BENCH_service.json\n");
    return 1;
  }
  std::printf("# merged dist section into BENCH_service.json\n");
  return 0;
}
