// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench_fig* binary reproduces one figure of the paper's evaluation
// (§6): it runs the three algorithms — incremental anytime (IAMA),
// memoryless, one-shot — on the TPC-H query blocks grouped by table count
// and prints the per-invocation optimization times the figure plots.
#ifndef MOQO_BENCH_BENCH_COMMON_H_
#define MOQO_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/memoryless.h"
#include "baseline/one_shot.h"
#include "catalog/tpch.h"
#include "core/incremental_optimizer.h"
#include "core/resolution.h"
#include "plan/cost_model.h"
#include "query/tpch_queries.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace moqo {
namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const { return MillisSince(start_); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Operator options used by all figure benches. Sized so that the finest
// precision (α_T = 1.005) stays laptop-scale while preserving the paper's
// search-space ingredients: several scan strategies (incl. sampling, more
// for larger tables), index scans, three join algorithms, parallelism.
inline OperatorOptions BenchOperatorOptions() {
  OperatorOptions options;
  options.max_workers = 16;
  options.max_sampling_rates_per_table = 4;
  return options;
}

// Per-invocation times (ms) of one algorithm on one query.
struct InvocationTimes {
  std::vector<double> ms;

  double Total() const {
    double t = 0.0;
    for (double v : ms) t += v;
    return t;
  }
  double Max() const {
    double m = 0.0;
    for (double v : ms) m = std::max(m, v);
    return m;
  }
};

// Runs the IAMA invocation series r = 0..rM (no user interaction, bounds
// fixed to infinity — the paper's evaluation scenario) and returns the
// per-invocation times. `num_threads` > 1 enables the optimizer's
// parallel phase 2.
inline InvocationTimes RunIamaSeries(const PlanFactory& factory,
                                     const ResolutionSchedule& schedule,
                                     int num_threads = 1) {
  const CostVector inf =
      CostVector::Infinite(factory.cost_model().schema().dims());
  InvocationTimes times;
  // Spawn the pool outside the timed region: thread creation is OS
  // overhead the single-threaded run never pays, and it would otherwise
  // bias the scaling numbers.
  std::unique_ptr<ThreadPool> pool;
  OptimizerOptions options;
  if (num_threads > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    options.pool = pool.get();
  }
  Timer construction;
  IncrementalOptimizer optimizer(factory, schedule, inf, options);
  double carry = construction.ElapsedMs();  // Scan seeding joins inv 1.
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    Timer t;
    optimizer.Optimize(inf, r);
    times.ms.push_back(t.ElapsedMs() + carry);
    carry = 0.0;
  }
  return times;
}

// Runs the memoryless series: the same sequence of result plan sets, each
// produced from scratch.
inline InvocationTimes RunMemorylessSeries(const PlanFactory& factory,
                                           const ResolutionSchedule& schedule,
                                           int num_threads = 1) {
  const CostVector inf =
      CostVector::Infinite(factory.cost_model().schema().dims());
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  const MemorylessDriver driver(factory, schedule, pool.get());
  InvocationTimes times;
  for (int r = 0; r <= schedule.MaxResolution(); ++r) {
    Timer t;
    const OneShotResult result = driver.RunInvocation(r, inf);
    (void)result;
    times.ms.push_back(t.ElapsedMs());
  }
  return times;
}

// Runs the one-shot algorithm: a single invocation at the target
// precision.
inline InvocationTimes RunOneShotOnce(const PlanFactory& factory,
                                      const ResolutionSchedule& schedule,
                                      int num_threads = 1) {
  const CostVector inf =
      CostVector::Infinite(factory.cost_model().schema().dims());
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  InvocationTimes times;
  Timer t;
  const OneShotResult result =
      RunOneShot(factory, schedule.alpha_target(), inf, pool.get());
  (void)result;
  times.ms.push_back(t.ElapsedMs());
  return times;
}

struct FigureRowStats {
  double sum_ms = 0.0;
  double max_ms = 0.0;
  int invocations = 0;

  void Add(const InvocationTimes& t) {
    for (double v : t.ms) {
      sum_ms += v;
      max_ms = std::max(max_ms, v);
      ++invocations;
    }
  }
  double AvgMs() const {
    return invocations == 0 ? 0.0 : sum_ms / invocations;
  }
};

// Runs one figure configuration (one resolution-level count) over the
// TPC-H workload and prints rows:
//   levels, tables, algorithm, avg_ms, max_ms, speedup-vs-IAMA.
inline void RunFigureConfig(
    double alpha_target, double alpha_step, int levels, bool report_max,
    ResolutionSchedule::Kind kind = ResolutionSchedule::Kind::kLinear) {
  const Catalog catalog = MakeTpchCatalog();
  const ResolutionSchedule schedule(levels, alpha_target, alpha_step, kind);
  std::printf("# levels=%d alpha_T=%.4g alpha_S=%.4g metrics=3 "
              "schedule=%s\n", levels, alpha_target, alpha_step,
              kind == ResolutionSchedule::Kind::kLinear ? "linear"
                                                        : "geometric");
  std::printf("%-8s %-7s %-22s %12s %12s %10s\n", "levels", "tables",
              "algorithm", "avg_ms", "max_ms", "vs_iama");
  for (int tables : TpchBlockTableCounts(catalog)) {
    FigureRowStats iama, memoryless, one_shot;
    for (const Query& query : TpchBlocksWithTables(catalog, tables)) {
      const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                                CostModelParams{}, BenchOperatorOptions());
      iama.Add(RunIamaSeries(factory, schedule));
      memoryless.Add(RunMemorylessSeries(factory, schedule));
      one_shot.Add(RunOneShotOnce(factory, schedule));
    }
    const double iama_ref = report_max ? iama.max_ms : iama.AvgMs();
    const auto row = [&](const char* name, const FigureRowStats& s) {
      const double value = report_max ? s.max_ms : s.AvgMs();
      std::printf("%-8d %-7d %-22s %12.3f %12.3f %9.2fx\n", levels, tables,
                  name, s.AvgMs(), s.max_ms,
                  iama_ref > 0.0 ? value / iama_ref : 0.0);
    };
    row("incremental_anytime", iama);
    row("memoryless", memoryless);
    row("one_shot", one_shot);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace moqo

#endif  // MOQO_BENCH_BENCH_COMMON_H_
