// Reproduces Figure 5 of the paper: MAXIMAL time per optimizer invocation
// for TPC-H sub-queries at fine target precision (α_T = 1.005, α_S = 0.5)
// with 20 resolution levels.
//
// Expected shape (paper §6.2): IAMA's worst invocation is up to ~8x
// faster than both baselines; memoryless and one-shot are practically
// equivalent under this metric because the memoryless algorithm's last
// invocation does the same work as the one-shot run.
#include "bench_common.h"

int main() {
  std::printf("=== Figure 5: max time per optimizer invocation, "
              "alpha_T=1.005, 20 levels ===\n\n");
  moqo::bench::RunFigureConfig(1.005, 0.5, /*levels=*/20,
                               /*report_max=*/true);

  // The paper remarks that IAMA's max-time ratio "could be extended by a
  // more optimized sequence of precision factors" (§6.2). The geometric
  // sequence equalizes the work unlocked per resolution step and avoids
  // the burst that the linear sequence exhibits at the finest level.
  std::printf("=== variant: geometric precision-factor sequence "
              "(paper's suggested optimization) ===\n\n");
  moqo::bench::RunFigureConfig(1.005, 0.5, /*levels=*/20,
                               /*report_max=*/true,
                               moqo::ResolutionSchedule::Kind::kGeometric);
  return 0;
}
