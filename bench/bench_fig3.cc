// Reproduces Figure 3 of the paper: average time per optimizer invocation
// for TPC-H sub-queries at moderate target precision (α_T = 1.01,
// α_S = 0.05), with 1, 5, and 20 resolution levels.
//
// Expected shape (paper §6.2): with a single resolution level IAMA is
// slightly slower than both baselines (indexing + extended pruning
// overhead, up to ~37% in the paper); with 5 levels IAMA is up to 3-4x
// faster; with 20 levels up to an order of magnitude faster.
#include "bench_common.h"

int main() {
  std::printf("=== Figure 3: avg time per optimizer invocation, "
              "alpha_T=1.01 ===\n\n");
  for (int levels : {1, 5, 20}) {
    moqo::bench::RunFigureConfig(1.01, 0.05, levels, /*report_max=*/false);
  }
  return 0;
}
