// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: cost-vector dominance, cell-index insert / range query /
// drain, Pareto frontier maintenance, and the Prune procedure.
#include <benchmark/benchmark.h>

#include "core/pruning.h"
#include "index/cell_index.h"
#include "pareto/dominance.h"
#include "pareto/frontier.h"
#include "util/rng.h"

namespace moqo {
namespace {

CostVector RandomCost(Rng& rng, int dims) {
  CostVector v(dims);
  for (int i = 0; i < dims; ++i) {
    v[i] = std::pow(10.0, rng.UniformDouble(-2.0, 6.0));
  }
  return v;
}

void BM_Dominates(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<CostVector> vectors;
  for (int i = 0; i < 1024; ++i) vectors.push_back(RandomCost(rng, dims));
  size_t i = 0;
  for (auto _ : state) {
    const bool d = vectors[i % 1024].Dominates(vectors[(i + 1) % 1024]);
    benchmark::DoNotOptimize(d);
    ++i;
  }
}
BENCHMARK(BM_Dominates)->Arg(2)->Arg(3)->Arg(6);

void BM_ApproxDominates(benchmark::State& state) {
  Rng rng(2);
  const CostVector a = RandomCost(rng, 3);
  const CostVector b = RandomCost(rng, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxDominates(a, b, 1.05));
  }
}
BENCHMARK(BM_ApproxDominates);

void BM_CellIndexInsert(benchmark::State& state) {
  const int dims = 3;
  Rng rng(3);
  std::vector<CostVector> costs;
  for (int i = 0; i < 4096; ++i) costs.push_back(RandomCost(rng, dims));
  for (auto _ : state) {
    state.PauseTiming();
    CellIndex index(dims);
    state.ResumeTiming();
    for (uint32_t i = 0; i < 4096; ++i) {
      index.Insert(i, costs[i], static_cast<int>(i % 20), 1);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CellIndexInsert);

void BM_CellIndexRangeQuery(benchmark::State& state) {
  const int dims = 3;
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  CellIndex index(dims);
  for (int i = 0; i < n; ++i) {
    index.Insert(static_cast<uint32_t>(i), RandomCost(rng, dims), i % 20, 1);
  }
  const CostVector bounds = RandomCost(rng, dims).Scaled(10.0);
  for (auto _ : state) {
    size_t hits = 0;
    index.ForEachInRange(bounds, 10, [&](const CellIndex::Entry&) {
      ++hits;
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CellIndexRangeQuery)->Arg(256)->Arg(4096)->Arg(65536);

void BM_CellIndexAnyInRange(benchmark::State& state) {
  const int dims = 3;
  Rng rng(5);
  CellIndex index(dims);
  for (int i = 0; i < 4096; ++i) {
    index.Insert(static_cast<uint32_t>(i), RandomCost(rng, dims), i % 20, 1);
  }
  const CostVector bounds = RandomCost(rng, dims);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.AnyInRange(bounds, 10));
  }
}
BENCHMARK(BM_CellIndexAnyInRange);

void BM_FrontierInsert(benchmark::State& state) {
  Rng rng(6);
  std::vector<CostVector> costs;
  for (int i = 0; i < 1024; ++i) costs.push_back(RandomCost(rng, 3));
  for (auto _ : state) {
    ParetoFrontier frontier;
    for (uint32_t i = 0; i < 1024; ++i) {
      frontier.Insert(costs[i], i);
    }
    benchmark::DoNotOptimize(frontier.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FrontierInsert);

void BM_Prune(benchmark::State& state) {
  Rng rng(7);
  std::vector<CostVector> costs;
  for (int i = 0; i < 2048; ++i) costs.push_back(RandomCost(rng, 3));
  const CostVector inf = CostVector::Infinite(3);
  const ResolutionSchedule schedule(5, 1.05, 0.3);
  for (auto _ : state) {
    CellIndex res(3), cand(3);
    for (uint32_t i = 0; i < 2048; ++i) {
      Prune(res, cand, inf, /*resolution=*/static_cast<int>(i % 5),
            /*compare_resolution=*/static_cast<int>(i % 5), schedule, i,
            costs[i], /*order=*/0, /*invocation=*/1,
            /*park_next_level_only=*/false, nullptr);
    }
    benchmark::DoNotOptimize(res.size());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_Prune);

}  // namespace
}  // namespace moqo

BENCHMARK_MAIN();
