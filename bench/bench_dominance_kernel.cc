// bench_dominance_kernel — microbenchmark of the data-oriented Pareto
// kernel (pareto/kernel.h) against the scalar layout it replaced.
//
// Three workloads, each at cell sizes {16, 256, 4096} x dims {2, 3}:
//
//   filter   mask every entry of a cell against query bounds
//            (boundary-cell filtering in Collect/Drain/ForEachInRange):
//            scalar = per-entry CostVector::Dominates over an
//            array-of-structs vector; kernel = FilterByBounds lane pass.
//   probe    first-dominator search with early exit (pruning's
//            "∃ pA ⪯ α·c(p)" range probe): scalar = early-exit Dominates
//            loop; kernel = FindDominating blocked scan.
//   insert   Pareto-frontier maintenance: scalar = the frozen pre-kernel
//            ParetoFrontier::Insert; kernel = FrontierBank::BatchInsert.
//
// Throughput is reported in million entry-comparisons per second
// (filter/probe) and million inserts per second (insert), plus the
// kernel/scalar speedup. Output: a table on stdout and BENCH_kernel.json
// in the working directory so the perf trajectory is tracked across PRs.
//
// Usage:
//   ./build/bench_dominance_kernel            run + write BENCH_kernel.json
//   ./build/bench_dominance_kernel --verify   cross-check scalar vs kernel
//                                             bit-identity only; exits
//                                             nonzero on any mismatch (CI
//                                             smoke step, Release matrix)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cost/cost_vector.h"
#include "pareto/frontier.h"
#include "pareto/kernel.h"
#include "util/rng.h"

namespace moqo {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The frozen pre-kernel scalar frontier (also the reference in
// tests/kernel_test.cc); array-of-structs, per-entry checked compares.
struct ScalarFrontier {
  struct Entry {
    CostVector cost;
    uint64_t payload = 0;
  };
  std::vector<Entry> entries;

  bool Insert(const CostVector& cost, uint64_t payload) {
    for (const Entry& e : entries) {
      if (e.cost.StrictlyDominates(cost)) return false;
      if (e.cost.Equals(cost)) return false;
    }
    for (size_t i = 0; i < entries.size();) {
      if (cost.StrictlyDominates(entries[i].cost)) {
        entries[i] = entries.back();
        entries.pop_back();
      } else {
        ++i;
      }
    }
    entries.push_back({cost, payload});
    return true;
  }
};

CostVector RandomCost(Rng& rng, int dims) {
  CostVector c(dims);
  for (int d = 0; d < dims; ++d) {
    c[d] = 0.25 * static_cast<double>(rng.UniformInt(0, 63));
  }
  return c;
}

struct Workload {
  std::vector<CostVector> cell;   // Scalar (AoS) cell contents.
  CostBank bank;                  // The same contents in lane layout.
  std::vector<CostVector> probes; // Query bounds, ~50% hit rate.

  Workload(int cell_size, int dims, uint64_t seed) : bank(dims) {
    Rng rng(seed);
    cell.reserve(static_cast<size_t>(cell_size));
    for (int i = 0; i < cell_size; ++i) {
      const CostVector c = RandomCost(rng, dims);
      cell.push_back(c);
      bank.PushBack(c.data());
    }
    // Half loose probes (hit early — the cheap case for everyone), half
    // selective probes (mostly miss — the case that drives pruning cost,
    // where the whole cell is scanned).
    for (int i = 0; i < 32; ++i) probes.push_back(RandomCost(rng, dims));
    for (int i = 0; i < 32; ++i) {
      CostVector tight = RandomCost(rng, dims);
      for (int d = 0; d < dims; ++d) tight[d] *= 0.05;
      probes.push_back(tight);
    }
  }
};

struct Result {
  const char* workload;
  int cell_size;
  int dims;
  double scalar_mps;  // Million entry-ops/sec, scalar path.
  double kernel_mps;  // Million entry-ops/sec, kernel path.
  double speedup() const {
    return scalar_mps > 0.0 ? kernel_mps / scalar_mps : 0.0;
  }
};

// Merges a one-line "kernel" member (speedups vs the scalar path, keyed
// workload_cell_dims) into BENCH_service.json so the kernel and
// end-to-end perf trajectories travel in one file. The member is kept
// before bench_net_loadgen's "net_loadgen" member (which owns the file
// tail — it erases everything after its own key on rerun). Both writers
// have known output shapes, so plain string surgery is safe; a missing
// file gets a minimal body.
void MergeKernelIntoServiceJson(const std::vector<Result>& results) {
  std::string body;
  if (std::FILE* f = std::fopen("BENCH_service.json", "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
    std::fclose(f);
  }
  const std::string key = ",\n  \"kernel\":";
  const std::string next_key = ",\n  \"net_loadgen\":";
  const size_t existing = body.find(key);
  if (existing != std::string::npos) {
    // The member is one line; it ends where the next member (or the
    // closing brace's newline) begins.
    size_t end = body.find(next_key, existing + key.size());
    if (end == std::string::npos) end = body.find("\n}", existing + key.size());
    if (end == std::string::npos) end = body.size();
    body.erase(existing, end - existing);
  }
  std::string member = "{\"unit\": \"speedup vs scalar\"";
  for (const Result& r : results) {
    char item[96];
    std::snprintf(item, sizeof(item), ", \"%s_c%d_d%d\": %.2f", r.workload,
                  r.cell_size, r.dims, r.speedup());
    member += item;
  }
  member += "}";
  const std::string entry = key + " " + member;
  size_t insert_at = body.find(next_key);
  if (insert_at == std::string::npos) insert_at = body.rfind("\n}");
  if (insert_at == std::string::npos) {
    body = "{\n  \"bench\": \"dominance_kernel\"" + entry + "\n}\n";
  } else {
    body.insert(insert_at, entry);
  }
  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write BENCH_service.json\n");
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("merged \"kernel\" into BENCH_service.json\n");
}

// Calibrates reps so each measured side runs ~80ms, then measures.
template <typename F>
double MeasureMs(F&& body, long* reps_out) {
  long reps = 1;
  for (;;) {
    const double t0 = NowMs();
    for (long r = 0; r < reps; ++r) body(r);
    const double elapsed = NowMs() - t0;
    if (elapsed >= 80.0 || reps > (1L << 40)) {
      *reps_out = reps;
      return elapsed;
    }
    reps *= elapsed < 8.0 ? 10 : 2;
  }
}

Result BenchFilter(const Workload& w) {
  const size_t n = w.cell.size();
  std::vector<uint8_t> mask(n);
  uint64_t sink = 0;
  long reps = 0;
  // Loose probes only: a boundary cell's bounds sit inside the cell's
  // value range by construction (cells far above the bounds classify
  // outside and are never filtered).
  const double scalar_ms = MeasureMs(
      [&](long r) {
        const CostVector& b = w.probes[static_cast<size_t>(r) % 32];
        for (size_t i = 0; i < n; ++i) {
          mask[i] = w.cell[i].Dominates(b);
        }
        sink += mask[static_cast<size_t>(r) % n];
      },
      &reps);
  const double scalar_mps =
      static_cast<double>(reps) * static_cast<double>(n) / scalar_ms / 1e3;
  const double kernel_ms = MeasureMs(
      [&](long r) {
        const CostVector& b = w.probes[static_cast<size_t>(r) % 32];
        sink += FilterByBounds(w.bank, b.data(), mask.data());
      },
      &reps);
  const double kernel_mps =
      static_cast<double>(reps) * static_cast<double>(n) / kernel_ms / 1e3;
  if (sink == 0xDEAD) std::printf("#");
  return {"filter", static_cast<int>(n), w.bank.dims(), scalar_mps,
          kernel_mps};
}

Result BenchProbe(const Workload& w) {
  // Metric: million probes/sec over the identical probe stream — the
  // early-exit asymmetry (scalar exits per entry, kernel per block) is
  // part of what is being measured.
  const size_t n = w.cell.size();
  uint64_t sink = 0;
  long reps = 0;
  const double scalar_ms = MeasureMs(
      [&](long r) {
        const CostVector& b = w.probes[static_cast<size_t>(r) % 64];
        for (size_t i = 0; i < n; ++i) {
          if (w.cell[i].Dominates(b)) {
            sink += i;
            return;
          }
        }
      },
      &reps);
  const double scalar_mps = static_cast<double>(reps) / scalar_ms / 1e3;
  const double kernel_ms = MeasureMs(
      [&](long r) {
        const CostVector& b = w.probes[static_cast<size_t>(r) % 64];
        sink += FindDominating(w.bank, b.data());
      },
      &reps);
  const double kernel_mps = static_cast<double>(reps) / kernel_ms / 1e3;
  if (sink == 0xDEAD) std::printf("#");
  return {"probe", static_cast<int>(n), w.bank.dims(), scalar_mps,
          kernel_mps};
}

Result BenchInsert(int cell_size, int dims, uint64_t seed) {
  // Pre-generate an insert stream sized to keep the frontier churning.
  Rng rng(seed);
  std::vector<CostVector> stream;
  for (int i = 0; i < cell_size; ++i) stream.push_back(RandomCost(rng, dims));
  uint64_t sink = 0;
  long reps = 0;
  const double scalar_ms = MeasureMs(
      [&](long) {
        ScalarFrontier f;
        for (size_t i = 0; i < stream.size(); ++i) {
          sink += f.Insert(stream[i], i);
        }
      },
      &reps);
  const double scalar_mps = static_cast<double>(reps) *
                            static_cast<double>(stream.size()) / scalar_ms /
                            1e3;
  const double kernel_ms = MeasureMs(
      [&](long) {
        FrontierBank f(dims);
        for (size_t i = 0; i < stream.size(); ++i) {
          sink += f.BatchInsert(stream[i].data(), i);
        }
      },
      &reps);
  const double kernel_mps = static_cast<double>(reps) *
                            static_cast<double>(stream.size()) / kernel_ms /
                            1e3;
  if (sink == 0xDEAD) std::printf("#");
  return {"insert", cell_size, dims, scalar_mps, kernel_mps};
}

// --verify: scalar-vs-kernel bit-identity cross-check (the CI smoke).
// Returns the number of mismatches.
int Verify() {
  int failures = 0;
  Rng rng(20260808);
  // Masks and probes against linear scans.
  for (int trial = 0; trial < 500; ++trial) {
    const int dims = 2 + trial % 3;
    const int n = 1 + static_cast<int>(rng.Uniform(512));
    Workload w(n, dims, 1000 + static_cast<uint64_t>(trial));
    std::vector<uint8_t> mask(w.cell.size());
    for (const CostVector& b : w.probes) {
      FilterByBounds(w.bank, b.data(), mask.data());
      uint32_t expect_first = kKernelNpos;
      for (size_t i = 0; i < w.cell.size(); ++i) {
        const bool in = w.cell[i].Dominates(b);
        if (in && expect_first == kKernelNpos) {
          expect_first = static_cast<uint32_t>(i);
        }
        if ((mask[i] != 0) != in) {
          std::fprintf(stderr, "FilterByBounds mismatch trial %d entry %zu\n",
                       trial, i);
          ++failures;
        }
      }
      if (FindDominating(w.bank, b.data()) != expect_first) {
        std::fprintf(stderr, "FindDominating mismatch trial %d\n", trial);
        ++failures;
      }
    }
  }
  // Frontier decisions and final layout, bit for bit.
  for (int trial = 0; trial < 500; ++trial) {
    const int dims = 2 + trial % 3;
    Rng local(777 + static_cast<uint64_t>(trial));
    ScalarFrontier ref;
    FrontierBank fb(dims);
    ParetoFrontier pf;
    for (int i = 0; i < 64; ++i) {
      CostVector c(dims);
      for (int d = 0; d < dims; ++d) {
        c[d] = 0.5 * static_cast<double>(local.UniformInt(0, 7));
      }
      const bool r0 = ref.Insert(c, static_cast<uint64_t>(i));
      const bool r1 = fb.BatchInsert(c.data(), static_cast<uint64_t>(i));
      const bool r2 = pf.Insert(c, static_cast<uint64_t>(i));
      if (r0 != r1 || r0 != r2) {
        std::fprintf(stderr, "insert decision mismatch trial %d step %d\n",
                     trial, i);
        ++failures;
      }
    }
    if (ref.entries.size() != fb.size() ||
        ref.entries.size() != pf.size()) {
      std::fprintf(stderr, "frontier size mismatch trial %d\n", trial);
      ++failures;
      continue;
    }
    for (size_t i = 0; i < ref.entries.size(); ++i) {
      bool same = ref.entries[i].payload == fb.payloads[i] &&
                  ref.entries[i].payload == pf.entries()[i].payload;
      for (int d = 0; d < dims && same; ++d) {
        uint64_t a, b, c2;
        const double da = ref.entries[i].cost.at(d);
        const double db = fb.costs.At(i, d);
        const double dc = pf.entries()[i].cost.at(d);
        std::memcpy(&a, &da, 8);
        std::memcpy(&b, &db, 8);
        std::memcpy(&c2, &dc, 8);
        same = a == b && a == c2;
      }
      if (!same) {
        std::fprintf(stderr, "frontier layout mismatch trial %d entry %zu\n",
                     trial, i);
        ++failures;
      }
    }
  }
  return failures;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--verify") {
      const int failures = Verify();
      if (failures != 0) {
        std::fprintf(stderr, "verify: %d mismatches\n", failures);
        return 1;
      }
      std::printf("verify: scalar and kernel paths bit-identical\n");
      return 0;
    }
  }

  std::vector<Result> results;
  std::printf("%-8s %10s %6s %14s %14s %10s\n", "workload", "cell", "dims",
              "scalar_mops", "kernel_mops", "speedup");
  for (int dims : {2, 3}) {
    for (int cell : {16, 256, 4096}) {
      const Workload w(cell, dims, static_cast<uint64_t>(cell) * 31 + dims);
      for (const Result& r :
           {BenchFilter(w), BenchProbe(w), BenchInsert(cell, dims, 7)}) {
        results.push_back(r);
        std::printf("%-8s %10d %6d %14.1f %14.1f %9.2fx\n", r.workload,
                    r.cell_size, r.dims, r.scalar_mps, r.kernel_mps,
                    r.speedup());
      }
    }
  }

  MergeKernelIntoServiceJson(results);

  FILE* f = std::fopen("BENCH_kernel.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"dominance_kernel\",\n");
    std::fprintf(f,
                 "  \"unit\": \"million ops/sec (filter: entries, probe: "
                 "probes, insert: inserts)\",\n");
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"cell\": %d, \"dims\": %d, "
                   "\"scalar_mops\": %.1f, \"kernel_mops\": %.1f, "
                   "\"speedup\": %.2f}%s\n",
                   r.workload, r.cell_size, r.dims, r.scalar_mps,
                   r.kernel_mps, r.speedup(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_kernel.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace moqo

int main(int argc, char** argv) { return moqo::Main(argc, argv); }
