// bench_net_loadgen — serving-stack latency under overload.
//
// Boots an OptimizerServer (in-process, loopback TCP) with a deliberately
// small --max-inflight, then throws client fleets at it that exceed that
// capacity. Sessions behave like well-written clients: on kShedding they
// honor the server's retry-after hint and resubmit. The headline metric
// is time-to-first-frontier (submit call to first streamed snapshot,
// *including* shed-retry delays) at p50/p99 — what an interactive caller
// actually experiences when the service is saturated, and the number the
// admission-control design trades throughput against.
//
// Appends a "net_loadgen" member to BENCH_service.json next to the
// in-process service numbers from bench_service_throughput (which owns
// and rewrites that file; this bench only merges its own key).
//
// Usage: ./build/bench_net_loadgen [--queries N] [--max-inflight N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch.h"
#include "net/client.h"
#include "net/server.h"
#include "query/query.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace moqo;

namespace {

using Clock = std::chrono::steady_clock;

// Same workload shape as examples/loadgen.cpp: seeded random chain joins
// over the TPC-H base tables, distinct per (session, index) so runs do
// real optimization instead of hitting the frontier cache.
Query MakeQuery(Rng* rng, int session, int index) {
  const int num_tables = 3 + static_cast<int>(rng->Uniform(4));
  QueryBuilder b("nb_s" + std::to_string(session) + "_q" +
                 std::to_string(index));
  for (int i = 0; i < num_tables; ++i) {
    b.AddTable(static_cast<TableId>(rng->Uniform(8)),
               rng->UniformDouble(0.05, 1.0));
  }
  for (int i = 1; i < num_tables; ++i) {
    b.AddJoin(i - 1, i, rng->UniformDouble(1e-6, 0.1));
  }
  return b.Build();
}

struct RunResult {
  int sessions = 0;
  uint64_t ok = 0;
  uint64_t shed_rejections = 0;
  uint64_t transport_errors = 0;
  double wall_s = 0.0;
  double ttff_p50_ms = 0.0;
  double ttff_p99_ms = 0.0;
};

RunResult RunFleet(uint16_t port, int sessions, int queries_per_session) {
  RunResult out;
  out.sessions = sessions;
  std::vector<std::vector<double>> ttff(static_cast<size_t>(sessions));
  std::atomic<uint64_t> ok{0}, shed{0}, errors{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    fleet.emplace_back([&, s] {
      Rng rng(0x9E3779B9u + static_cast<uint64_t>(s));
      net::OptimizerClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++errors;
        return;
      }
      for (int q = 0; q < queries_per_session; ++q) {
        SubmitRequest request;
        request.query = MakeQuery(&rng, s, q);
        request.max_iterations = 6;
        request.subscribe = true;
        const Clock::time_point t0 = Clock::now();
        StatusOr<SubmitResponse> submitted = client.Submit(request);
        // A well-behaved overload client: sleep the hinted backoff and
        // resubmit until admitted. The retry time stays inside the ttff
        // measurement — shedding is supposed to *shape* latency, and
        // this is where that shows up.
        while (!submitted.ok() &&
               submitted.status().code() == StatusCode::kShedding) {
          ++shed;
          const uint64_t hint = submitted.status().retry_after_ms();
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<uint64_t>(hint > 0 ? hint : 1, 250)));
          submitted = client.Submit(request);
        }
        if (!submitted.ok()) {
          ++errors;
          return;
        }
        StatusOr<bool> first = client.WaitSnapshot(submitted.value().id);
        if (!first.ok()) {
          ++errors;
          return;
        }
        ttff[static_cast<size_t>(s)].push_back(MillisSince(t0));
        if (!client.Wait(submitted.value().id).ok()) {
          ++errors;
          return;
        }
        ++ok;
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  out.wall_s = MillisSince(start) / 1000.0;
  out.ok = ok.load();
  out.shed_rejections = shed.load();
  out.transport_errors = errors.load();
  std::vector<double> all;
  for (const auto& v : ttff) all.insert(all.end(), v.begin(), v.end());
  out.ttff_p50_ms = Percentile(all, 0.50);
  out.ttff_p99_ms = Percentile(all, 0.99);
  return out;
}

// Replaces any previous "net_loadgen" member and inserts the new one
// before the file's closing brace. Both writers of this file have known
// output shapes, so plain string surgery is safe.
bool MergeIntoBenchJson(const std::string& member) {
  std::string body;
  if (std::FILE* f = std::fopen("BENCH_service.json", "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
    std::fclose(f);
  }
  const std::string key = ",\n  \"net_loadgen\":";
  const size_t existing = body.find(key);
  if (existing != std::string::npos) {
    // Drop the stale member and everything after it (it is always the
    // last member this bench appended, followed only by the close).
    body.erase(existing);
  } else {
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == ' ' || body.back() == '}')) {
      const char c = body.back();
      body.pop_back();
      if (c == '}') break;
    }
  }
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
    body.pop_back();
  }
  if (body.empty()) body = "{\n  \"bench\": \"net_loadgen\"";
  body += key + " " + member + "\n}\n";
  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int queries_per_session = 3;
  size_t max_inflight = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--queries" && i + 1 < argc) {
      queries_per_session = std::atoi(argv[++i]);
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      max_inflight = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  Catalog catalog = MakeTpchCatalog();
  ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.num_shards = 2;
  service_options.max_inflight_runs = max_inflight;
  OptimizerService service(catalog, service_options);
  net::OptimizerServer server(&service, {});
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf(
      "# bench_net_loadgen: loopback TCP, max_inflight=%zu, %d "
      "queries/session\n"
      "# ttff includes shed-retry backoff (client honors retry-after)\n"
      "%9s %6s %6s %10s %13s %13s %8s\n",
      max_inflight, queries_per_session, "sessions", "ok", "shed", "wall_s",
      "ttff_p50_ms", "ttff_p99_ms", "q/s");

  std::string members;
  const int fleets[] = {4, 16, 48};  // Under, at, and far past capacity.
  bool failed = false;
  for (int sessions : fleets) {
    const RunResult r = RunFleet(server.port(), sessions, queries_per_session);
    failed = failed || r.transport_errors > 0;
    const double qps = r.wall_s > 0 ? static_cast<double>(r.ok) / r.wall_s : 0;
    std::printf("%9d %6llu %6llu %10.3f %13.3f %13.3f %8.1f\n", sessions,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.shed_rejections), r.wall_s,
                r.ttff_p50_ms, r.ttff_p99_ms, qps);
    std::fflush(stdout);
    char row[320];
    std::snprintf(
        row, sizeof(row),
        "%s\n    {\"sessions\": %d, \"ok\": %llu, \"shed\": %llu, "
        "\"wall_s\": %.6f, \"ttff_p50_ms\": %.3f, \"ttff_p99_ms\": %.3f, "
        "\"qps\": %.3f}",
        members.empty() ? "" : ",", sessions,
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.shed_rejections), r.wall_s,
        r.ttff_p50_ms, r.ttff_p99_ms, qps);
    members += row;
  }
  server.BeginDrain();
  service.WaitIdle();
  server.Shutdown();
  if (failed) {
    std::fprintf(stderr, "transport errors during bench; not writing json\n");
    return 1;
  }

  const std::string member = "{\n    \"max_inflight\": " +
                             std::to_string(max_inflight) +
                             ",\n    \"fleets\": [" + members +
                             "\n    ]\n  }";
  if (!MergeIntoBenchJson(member)) {
    std::fprintf(stderr, "failed to write BENCH_service.json\n");
    return 1;
  }
  std::printf("# merged \"net_loadgen\" into BENCH_service.json\n");
  return 0;
}
