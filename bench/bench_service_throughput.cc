// bench_service_throughput — service-level scaling study: queries/sec and
// p99 time-to-first-frontier as functions of scheduler shard count and
// the number of in-flight queries, at a fixed total worker budget.
//
// The workload is 10-table random-topology queries (per the roadmap:
// small queries have steps too short to expose scheduler serialization —
// at 10 tables each anytime step does real enumeration work, so flat qps
// vs. shard count would indicate a scheduling bottleneck, not noise).
// Each configuration replays the same query list in waves of `inflight`
// concurrently admitted sessions. The frontier cache and in-flight
// coalescing are disabled so every wave pays full optimization cost.
//
// Output: a self-describing table on stdout, plus BENCH_service.json in
// the working directory so the perf trajectory is tracked across PRs.
//
// Usage:
//   ./build/bench_service_throughput [threads] [--full]
//     threads  total worker budget shared by all shards (default 8)
//     --full   larger workload + wider sweep (machine-scale)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

namespace moqo {
namespace {

using Clock = std::chrono::steady_clock;

// Keeps enumeration per query moderate so a full sweep of configurations
// stays laptop-scale while each step still has real work for the pool.
OperatorOptions ServiceBenchOperatorOptions() {
  OperatorOptions options;
  options.max_workers = 4;
  options.max_sampling_rates_per_table = 1;
  return options;
}

struct ConfigResult {
  int shards = 0;
  size_t inflight = 0;
  size_t queries = 0;
  double wall_s = 0.0;
  std::vector<double> ttff_ms;
  ServiceStats stats;
};

ConfigResult RunConfig(const Catalog& catalog,
                       const std::vector<Query>& workload, int threads,
                       int shards, size_t inflight, int levels) {
  ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.num_shards = shards;
  service_options.frontier_cache_capacity = 0;  // Measure real work.
  service_options.coalesce_in_flight = false;   // Every submission runs.
  service_options.operator_options = ServiceBenchOperatorOptions();
  OptimizerService service(catalog, service_options);

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule::Moderate(levels);

  ConfigResult result;
  result.shards = shards;
  result.inflight = inflight;
  const Clock::time_point wall_start = Clock::now();
  for (size_t base = 0; base < workload.size(); base += inflight) {
    const size_t wave_end = std::min(base + inflight, workload.size());
    struct Track {
      QueryId id;
      std::shared_ptr<std::atomic<double>> ttff;
    };
    std::vector<Track> wave;
    for (size_t i = base; i < wave_end; ++i) {
      auto ttff = std::make_shared<std::atomic<double>>(-1.0);
      auto first = std::make_shared<std::atomic<bool>>(false);
      const Clock::time_point submitted = Clock::now();
      StatusOr<QueryId> id = service.Submit(
          workload[i], submit,
          [ttff, first, submitted](QueryId, const FrontierSnapshot&) {
            if (!first->exchange(true)) {
              ttff->store(MillisSince(submitted));
            }
          });
      MOQO_CHECK(id.ok());
      wave.push_back({id.value(), ttff});
    }
    for (const Track& t : wave) {
      const QueryResult r = service.Wait(t.id);
      MOQO_CHECK(r.state == QueryState::kDone);
      ++result.queries;
      result.ttff_ms.push_back(t.ttff->load());
    }
  }
  result.wall_s = MillisSince(wall_start) / 1000.0;
  result.stats = service.stats();
  return result;
}

}  // namespace
}  // namespace moqo

int main(int argc, char** argv) {
  using namespace moqo;

  int threads = 8;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      threads = std::atoi(argv[i]);
      if (threads < 1) {
        std::fprintf(stderr,
                     "usage: bench_service_throughput [threads] [--full]\n");
        return 1;
      }
    }
  }

  // 10-table random topologies: large enough that one anytime step is
  // real work, mixed shapes so shard turns have uneven lengths (the
  // head-of-line case work stealing is meant to fix).
  const int kNumTables = 10;
  const int num_queries = full ? 12 : 6;
  const int levels = full ? 4 : 3;
  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> workload;
  Rng rng(77);
  const Topology topologies[] = {Topology::kChain, Topology::kStar,
                                 Topology::kCycle, Topology::kRandomTree};
  for (int i = 0; i < num_queries; ++i) {
    GeneratorOptions gen;
    gen.num_tables = kNumTables;
    gen.topology = topologies[i % 4];
    Query q = RandomQuery(rng, gen, &catalog);
    q.name = "rand10_" + std::to_string(i);
    workload.push_back(std::move(q));
  }

  std::vector<int> shard_counts = {1, 2, 4};
  if (full && threads >= 8) shard_counts.push_back(8);
  std::vector<size_t> inflights = {1, 4,
                                   static_cast<size_t>(num_queries)};

  std::printf("# service throughput: %zu queries x %d tables per "
              "configuration, %d worker threads total\n",
              workload.size(), kNumTables, threads);
  std::printf("%7s %9s %8s %8s %8s %12s %12s %10s %8s\n", "shards",
              "inflight", "queries", "wall_s", "qps", "ttff_p50_ms",
              "ttff_p99_ms", "steps", "steals");

  std::string json = "{\n  \"bench\": \"service_throughput\",\n";
  json += "  \"total_threads\": " + std::to_string(threads) + ",\n";
  json += "  \"num_tables\": " + std::to_string(kNumTables) + ",\n";
  json += "  \"levels\": " + std::to_string(levels) + ",\n";
  json += "  \"queries_per_config\": " + std::to_string(workload.size()) +
          ",\n  \"configs\": [";
  bool first_row = true;
  for (int shards : shard_counts) {
    if (shards > threads) continue;  // Do not oversubscribe the budget.
    for (size_t inflight : inflights) {
      const ConfigResult r =
          RunConfig(catalog, workload, threads, shards, inflight, levels);
      const double qps = r.wall_s > 0.0 ? r.queries / r.wall_s : 0.0;
      const double p50 = Percentile(r.ttff_ms, 0.50);
      const double p99 = Percentile(r.ttff_ms, 0.99);
      std::printf("%7d %9zu %8zu %8.3f %8.2f %12.3f %12.3f %10llu %8llu\n",
                  shards, inflight, r.queries, r.wall_s, qps, p50, p99,
                  static_cast<unsigned long long>(r.stats.steps_executed),
                  static_cast<unsigned long long>(r.stats.work_steals));
      std::fflush(stdout);
      char row[512];
      std::snprintf(row, sizeof(row),
                    "%s\n    {\"shards\": %d, \"inflight\": %zu, "
                    "\"queries\": %zu, \"wall_s\": %.6f, \"qps\": %.3f, "
                    "\"ttff_p50_ms\": %.3f, \"ttff_p99_ms\": %.3f, "
                    "\"steps\": %llu, \"work_steals\": %llu}",
                    first_row ? "" : ",", shards, inflight, r.queries,
                    r.wall_s, qps, p50, p99,
                    static_cast<unsigned long long>(r.stats.steps_executed),
                    static_cast<unsigned long long>(r.stats.work_steals));
      json += row;
      first_row = false;
    }
  }
  json += "\n  ]\n}\n";

  const char* json_path = "BENCH_service.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  return 0;
}
