// bench_service_throughput — service-level scaling study: queries/sec and
// p99 time-to-first-frontier as functions of the number of in-flight
// queries and the shared pool's thread count.
//
// The workload mixes TPC-H join blocks (2-6 tables) with random-topology
// queries; each configuration replays the same query list in waves of
// `inflight` concurrently admitted sessions. The frontier cache is
// disabled so every wave pays full optimization cost.
//
// Output rows:
//   threads  inflight  queries  wall_s  qps  ttff_p50_ms  ttff_p99_ms
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

namespace moqo {
namespace {

using Clock = std::chrono::steady_clock;

// Keeps enumeration per query moderate so a full sweep of configurations
// stays laptop-scale while the pool still has real work per step.
OperatorOptions ServiceBenchOperatorOptions() {
  OperatorOptions options;
  options.max_workers = 8;
  options.max_sampling_rates_per_table = 2;
  return options;
}

struct ConfigResult {
  double wall_s = 0.0;
  std::vector<double> ttff_ms;
  size_t queries = 0;
};

ConfigResult RunConfig(const Catalog& catalog,
                       const std::vector<Query>& workload, int threads,
                       size_t inflight) {
  ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.frontier_cache_capacity = 0;  // Measure real work.
  service_options.operator_options = ServiceBenchOperatorOptions();
  OptimizerService service(catalog, service_options);

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule::Moderate(5);

  ConfigResult result;
  const Clock::time_point wall_start = Clock::now();
  for (size_t base = 0; base < workload.size(); base += inflight) {
    const size_t wave_end = std::min(base + inflight, workload.size());
    struct Track {
      QueryId id;
      std::shared_ptr<std::atomic<double>> ttff;
    };
    std::vector<Track> wave;
    for (size_t i = base; i < wave_end; ++i) {
      auto ttff = std::make_shared<std::atomic<double>>(-1.0);
      auto first = std::make_shared<std::atomic<bool>>(false);
      const Clock::time_point submitted = Clock::now();
      StatusOr<QueryId> id = service.Submit(
          workload[i], submit,
          [ttff, first, submitted](QueryId, const FrontierSnapshot&) {
            if (!first->exchange(true)) {
              ttff->store(MillisSince(submitted));
            }
          });
      MOQO_CHECK(id.ok());
      wave.push_back({id.value(), ttff});
    }
    for (const Track& t : wave) {
      const QueryResult r = service.Wait(t.id);
      MOQO_CHECK(r.state == QueryState::kDone);
      ++result.queries;
      result.ttff_ms.push_back(t.ttff->load());
    }
  }
  result.wall_s = MillisSince(wall_start) / 1000.0;
  return result;
}

}  // namespace
}  // namespace moqo

int main() {
  using namespace moqo;

  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> workload;
  for (const Query& q : TpchQueryBlocks(catalog)) {
    if (q.NumTables() <= 6) workload.push_back(q);
  }
  Rng rng(77);
  const Topology topologies[] = {Topology::kChain, Topology::kStar,
                                 Topology::kCycle, Topology::kRandomTree};
  for (int i = 0; i < 8; ++i) {
    GeneratorOptions gen;
    gen.num_tables = 5;
    gen.topology = topologies[i % 4];
    Query q = RandomQuery(rng, gen, &catalog);
    q.name = "rand" + std::to_string(i);
    workload.push_back(std::move(q));
  }

  std::printf("# service throughput: %zu queries per configuration\n",
              workload.size());
  std::printf("%8s %9s %8s %8s %8s %12s %12s\n", "threads", "inflight",
              "queries", "wall_s", "qps", "ttff_p50_ms", "ttff_p99_ms");
  const int thread_counts[] = {1, 2, 4, 8};
  const size_t inflights[] = {1, 8, 16};
  for (int threads : thread_counts) {
    for (size_t inflight : inflights) {
      const ConfigResult r = RunConfig(catalog, workload, threads, inflight);
      std::printf("%8d %9zu %8zu %8.3f %8.2f %12.3f %12.3f\n", threads,
                  inflight, r.queries, r.wall_s,
                  r.wall_s > 0.0 ? r.queries / r.wall_s : 0.0,
                  Percentile(r.ttff_ms, 0.50), Percentile(r.ttff_ms, 0.99));
    }
  }
  return 0;
}
