// bench_service_throughput — service-level scaling study: queries/sec and
// p99 time-to-first-frontier as functions of scheduler shard count and
// the number of in-flight queries, at a fixed total worker budget.
//
// The workload is 10-table *overlapping-but-distinct* queries: every
// query embeds the same 7-table chain core (same table order, same
// predicate sequence) and adds 3 private tables at a rotating root.
// Earlier benches repeated identical queries, which the whole-query
// cache / coalescing would serve for free and which tell the fragment
// store nothing; distinct roots keep every submission a real run (the
// scheduler signal) while the shared core exercises cross-query
// fragment sharing — each configuration runs with the fragment store
// disabled, cold, and after a warm-store pre-pass (the whole workload
// run once before the clock starts, stats reported as measured-pass
// deltas). The warm rows report the store's honest hit rate at high
// inflight: cold, a full wave's lookups race ahead of the first
// publish, so the cold hit rate drops toward zero by construction, not
// because sharing failed. The frontier cache and
// in-flight coalescing stay disabled so every wave pays its own way.
// At 10 tables each anytime step does real enumeration work, so flat
// qps vs. shard count would indicate a scheduling bottleneck, not noise.
//
// Output: a self-describing table on stdout, plus BENCH_service.json in
// the working directory so the perf trajectory is tracked across PRs.
//
// A final persistence study (the `persistence` section of the JSON)
// fixes one configuration and compares three boot states of the
// fragment store: cold (empty log), DRAM-warm (same-process warm
// pre-pass — the in-memory ceiling), and disk-warm (the pre-pass runs
// in a *separate* service whose store log is then replayed by a fresh
// one, i.e. the restart scenario `optimizerd --store-path` ships).
//
// Usage:
//   ./build/bench_service_throughput [threads] [--full] [--store-path F]
//     threads       total worker budget shared by all shards (default 8)
//     --full        larger workload + wider sweep (machine-scale)
//     --store-path  fragment-store log file for the persistence study
//                   (default BENCH_service_store.log in the working
//                   directory; created fresh and removed afterwards)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch.h"
#include "query/query.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

namespace moqo {
namespace {

using Clock = std::chrono::steady_clock;

// Keeps enumeration per query moderate so a full sweep of configurations
// stays laptop-scale while each step still has real work for the pool.
OperatorOptions ServiceBenchOperatorOptions() {
  OperatorOptions options;
  options.max_workers = 4;
  options.max_sampling_rates_per_table = 1;
  return options;
}

// Builds `num_queries` overlapping 10-table queries: a shared 7-table
// chain core (tables appended to the catalog once, predicates in a fixed
// sequence) plus 3 per-query private tables chained off a rotating core
// root. Shared sub-chains canonicalize onto identical fragment keys;
// the private suffix keeps every query distinct for the scheduler.
std::vector<Query> OverlappingWorkload(Catalog* catalog, Rng& rng,
                                       int num_queries) {
  constexpr int kCoreTables = 7;
  constexpr int kPrivateTables = 3;
  std::vector<TableId> core_ids;
  std::vector<double> core_selectivities;
  for (int i = 0; i < kCoreTables; ++i) {
    TableDef def;
    def.name = "core" + std::to_string(i);
    def.cardinality = 1000.0 * (1 << (i % 5)) + 500.0 * i;
    core_ids.push_back(catalog->AddTable(def));
    core_selectivities.push_back(i % 2 == 0 ? 0.5 : 1.0);
  }
  std::vector<Query> workload;
  for (int q = 0; q < num_queries; ++q) {
    QueryBuilder b("overlap10_" + std::to_string(q));
    std::vector<int> refs;
    for (int i = 0; i < kCoreTables; ++i) {
      refs.push_back(b.AddTable(core_ids[static_cast<size_t>(i)],
                                core_selectivities[static_cast<size_t>(i)]));
    }
    for (int i = 0; i + 1 < kCoreTables; ++i) {
      b.AddJoin(refs[static_cast<size_t>(i)],
                refs[static_cast<size_t>(i + 1)],
                1.0 / catalog->Get(core_ids[static_cast<size_t>(i + 1)])
                          .cardinality);
    }
    // Private suffix: fresh random tables, chained off a rotating root —
    // shared sub-graphs, different roots (predicates appended after the
    // core sequence, keeping the core's canonical keys intact).
    int attach = refs[static_cast<size_t>(q % kCoreTables)];
    for (int i = 0; i < kPrivateTables; ++i) {
      TableDef def;
      def.name = "priv" + std::to_string(q) + "_" + std::to_string(i);
      def.cardinality = rng.UniformDouble(1000.0, 100000.0);
      const int ref = b.AddTable(catalog->AddTable(def),
                                 rng.UniformDouble(0.1, 1.0));
      b.AddJoin(attach, ref, 1.0 / def.cardinality);
      attach = ref;
    }
    workload.push_back(b.Build());
  }
  return workload;
}

struct ConfigResult {
  int shards = 0;
  size_t inflight = 0;
  bool warm = false;
  size_t queries = 0;
  double wall_s = 0.0;
  std::vector<double> ttff_ms;
  ServiceStats stats;
};

// `warm` runs the whole workload once, sequentially, before the clock
// starts: every cell the workload can share is then resident, so the
// measured pass reports the store's true hit rate even at high
// inflight. Without it, all lookups of a wave race ahead of the first
// publish and the hit rate at full inflight is honestly — but
// uninterestingly — near zero (the two effects are now separable).
// With a non-empty `store_path` the service persists its fragment
// store to that log — and, when the file already holds a previous
// service's fragments, boots disk-warm by replaying it.
ConfigResult RunConfig(const Catalog& catalog,
                       const std::vector<Query>& workload, int threads,
                       int shards, size_t inflight, int levels,
                       size_t fragment_mb, bool warm,
                       const std::string& store_path = "") {
  ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.num_shards = shards;
  service_options.frontier_cache_capacity = 0;  // Measure real work.
  service_options.coalesce_in_flight = false;   // Every submission runs.
  service_options.fragment_cache_bytes = fragment_mb << 20;
  service_options.fragment_store_path = store_path;
  service_options.operator_options = ServiceBenchOperatorOptions();
  OptimizerService service(catalog, service_options);

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule::Moderate(levels);

  if (warm) {
    for (const Query& query : workload) {
      const StatusOr<QueryId> id = service.Submit(query, submit);
      MOQO_CHECK(id.ok());
      const QueryResult r = service.Wait(id.value());
      MOQO_CHECK(r.state == QueryState::kDone);
    }
    // A completed run's publish lands on its shard thread shortly
    // after Wait returns; settle before snapshotting the pre-pass
    // counters so the measured-pass deltas are exact. One quiet poll
    // is not proof (a descheduled shard can publish late), so require
    // a sustained quiet window — ~20 ms with every pre-pass run
    // already waited on makes a straggler publish vanishingly
    // unlikely, and a miss would only skew bench counters, not
    // correctness.
    uint64_t last = service.stats().fragment_publishes;
    int quiet_polls = 0;
    while (quiet_polls < 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const uint64_t now = service.stats().fragment_publishes;
      quiet_polls = now == last ? quiet_polls + 1 : 0;
      last = now;
    }
  }
  const ServiceStats prepass = service.stats();

  ConfigResult result;
  result.shards = shards;
  result.inflight = inflight;
  result.warm = warm;
  const Clock::time_point wall_start = Clock::now();
  for (size_t base = 0; base < workload.size(); base += inflight) {
    const size_t wave_end = std::min(base + inflight, workload.size());
    struct Track {
      QueryId id;
      std::shared_ptr<std::atomic<double>> ttff;
    };
    std::vector<Track> wave;
    for (size_t i = base; i < wave_end; ++i) {
      auto ttff = std::make_shared<std::atomic<double>>(-1.0);
      auto first = std::make_shared<std::atomic<bool>>(false);
      const Clock::time_point submitted = Clock::now();
      StatusOr<QueryId> id = service.Submit(
          workload[i], submit,
          [ttff, first, submitted](QueryId, const FrontierSnapshot&) {
            if (!first->exchange(true)) {
              ttff->store(MillisSince(submitted));
            }
          });
      MOQO_CHECK(id.ok());
      wave.push_back({id.value(), ttff});
    }
    for (const Track& t : wave) {
      const QueryResult r = service.Wait(t.id);
      MOQO_CHECK(r.state == QueryState::kDone);
      ++result.queries;
      result.ttff_ms.push_back(t.ttff->load());
    }
  }
  result.wall_s = MillisSince(wall_start) / 1000.0;
  // Measured-pass deltas: the warm pre-pass must not pollute the
  // reported scheduler or sharing numbers.
  result.stats = service.stats().Since(prepass);
  return result;
}

}  // namespace
}  // namespace moqo

int main(int argc, char** argv) {
  using namespace moqo;

  int threads = 8;
  bool full = false;
  std::string store_path = "BENCH_service_store.log";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--store-path") == 0 && i + 1 < argc) {
      store_path = argv[++i];
    } else {
      threads = std::atoi(argv[i]);
      if (threads < 1) {
        std::fprintf(stderr,
                     "usage: bench_service_throughput [threads] [--full] "
                     "[--store-path FILE]\n");
        return 1;
      }
    }
  }

  // 10-table overlapping queries (shared 7-table chain core, 3 private
  // tables at rotating roots): large enough that one anytime step is
  // real work, distinct enough that every submission runs, shared enough
  // that the fragment store has something to say.
  const int kNumTables = 10;
  const int num_queries = full ? 12 : 6;
  const int levels = full ? 4 : 3;
  Catalog catalog = MakeTpchCatalog();
  Rng rng(77);
  const std::vector<Query> workload =
      OverlappingWorkload(&catalog, rng, num_queries);

  std::vector<int> shard_counts = {1, 2, 4};
  if (full && threads >= 8) shard_counts.push_back(8);
  std::vector<size_t> inflights = {1, 4,
                                   static_cast<size_t>(num_queries)};
  // Each configuration runs without the fragment store, with a cold
  // one, and with a warm-store pre-pass: the scheduler signal, the
  // publish-race-limited cold hit rate, and the store's true (warm)
  // hit rate stay separable.
  struct FragmentMode {
    size_t mb;
    bool warm;
  };
  const std::vector<FragmentMode> fragment_modes = {
      {0, false}, {64, false}, {64, true}};

  std::printf("# service throughput: %zu overlapping queries x %d tables "
              "per configuration, %d worker threads total\n",
              workload.size(), kNumTables, threads);
  std::printf("%7s %9s %8s %5s %8s %8s %8s %12s %12s %10s %8s %9s %9s\n",
              "shards", "inflight", "frag_mb", "warm", "queries", "wall_s",
              "qps", "ttff_p50_ms", "ttff_p99_ms", "steps", "steals",
              "frag_hit%", "frag_pub");

  std::string json = "{\n  \"bench\": \"service_throughput\",\n";
  json += "  \"total_threads\": " + std::to_string(threads) + ",\n";
  json += "  \"num_tables\": " + std::to_string(kNumTables) + ",\n";
  json += "  \"levels\": " + std::to_string(levels) + ",\n";
  json += "  \"workload\": \"overlapping_chain_core7_private3\",\n";
  json += "  \"queries_per_config\": " + std::to_string(workload.size()) +
          ",\n  \"configs\": [";
  bool first_row = true;
  for (int shards : shard_counts) {
    if (shards > threads) continue;  // Do not oversubscribe the budget.
    for (size_t inflight : inflights) {
      for (const FragmentMode& mode : fragment_modes) {
        const ConfigResult r =
            RunConfig(catalog, workload, threads, shards, inflight, levels,
                      mode.mb, mode.warm);
        const double qps = r.wall_s > 0.0 ? r.queries / r.wall_s : 0.0;
        const double p50 = Percentile(r.ttff_ms, 0.50);
        const double p99 = Percentile(r.ttff_ms, 0.99);
        const uint64_t lookups =
            r.stats.fragment_hits + r.stats.fragment_misses;
        const double hit_rate =
            lookups > 0
                ? 100.0 * static_cast<double>(r.stats.fragment_hits) /
                      static_cast<double>(lookups)
                : 0.0;
        std::printf(
            "%7d %9zu %8zu %5s %8zu %8.3f %8.2f %12.3f %12.3f %10llu "
            "%8llu %9.1f %9llu\n",
            shards, inflight, mode.mb, mode.warm ? "yes" : "no", r.queries,
            r.wall_s, qps, p50, p99,
            static_cast<unsigned long long>(r.stats.steps_executed),
            static_cast<unsigned long long>(r.stats.work_steals), hit_rate,
            static_cast<unsigned long long>(r.stats.fragment_publishes));
        std::fflush(stdout);
        char row[704];
        std::snprintf(
            row, sizeof(row),
            "%s\n    {\"shards\": %d, \"inflight\": %zu, "
            "\"fragment_mb\": %zu, \"warm_prepass\": %s, "
            "\"queries\": %zu, \"wall_s\": %.6f, \"qps\": %.3f, "
            "\"ttff_p50_ms\": %.3f, \"ttff_p99_ms\": %.3f, "
            "\"steps\": %llu, \"work_steals\": %llu, "
            "\"fragment_hits\": %llu, \"fragment_misses\": %llu, "
            "\"fragment_hit_rate\": %.4f, \"fragment_publishes\": %llu, "
            "\"fragment_evictions\": %llu}",
            first_row ? "" : ",", shards, inflight, mode.mb,
            mode.warm ? "true" : "false", r.queries, r.wall_s, qps, p50,
            p99, static_cast<unsigned long long>(r.stats.steps_executed),
            static_cast<unsigned long long>(r.stats.work_steals),
            static_cast<unsigned long long>(r.stats.fragment_hits),
            static_cast<unsigned long long>(r.stats.fragment_misses),
            hit_rate / 100.0,
            static_cast<unsigned long long>(r.stats.fragment_publishes),
            static_cast<unsigned long long>(r.stats.fragment_evictions));
        json += row;
        first_row = false;
      }
    }
  }
  json += "\n  ],\n";

  // --- Persistence study: cold vs DRAM-warm vs disk-warm (restart) ---------
  // One fixed configuration; what varies is the boot state of the
  // fragment store. disk_warm is the restart scenario: the pre-pass
  // service writes the log and is destroyed (its destructor drains the
  // write-behind queue), then a fresh service replays it.
  const int p_shards = std::min(2, threads);
  const size_t p_inflight = 1;  // Serial waves: seeding is never racing
                                // a publish, so each mode's hit rate is
                                // its honest ceiling.
  const size_t p_mb = 64;
  std::remove(store_path.c_str());

  struct PersistenceRow {
    const char* mode;
    ConfigResult r;
  };
  std::vector<PersistenceRow> rows;
  // Cold: empty log (still persisting — the write path is part of the
  // measured cost).
  rows.push_back({"cold", RunConfig(catalog, workload, threads, p_shards,
                                    p_inflight, levels, p_mb,
                                    /*warm=*/false, store_path)});
  std::remove(store_path.c_str());
  // DRAM-warm: same-process warm pre-pass, the in-memory ceiling.
  rows.push_back({"dram_warm",
                  RunConfig(catalog, workload, threads, p_shards, p_inflight,
                            levels, p_mb, /*warm=*/true, store_path)});
  std::remove(store_path.c_str());
  // Disk-warm: a separate service writes the log and dies; the measured
  // service boots by replaying it.
  {
    ServiceOptions prepass_options;
    prepass_options.num_threads = threads;
    prepass_options.num_shards = p_shards;
    prepass_options.frontier_cache_capacity = 0;
    prepass_options.coalesce_in_flight = false;
    prepass_options.fragment_cache_bytes = p_mb << 20;
    prepass_options.fragment_store_path = store_path;
    prepass_options.operator_options = ServiceBenchOperatorOptions();
    OptimizerService prepass(catalog, prepass_options);
    SubmitOptions submit;
    submit.iama.schedule = ResolutionSchedule::Moderate(levels);
    for (const Query& query : workload) {
      const StatusOr<QueryId> id = prepass.Submit(query, submit);
      MOQO_CHECK(id.ok());
      MOQO_CHECK(prepass.Wait(id.value()).state == QueryState::kDone);
    }
    // Destruction flushes the write-behind queue into the log.
  }
  rows.push_back({"disk_warm",
                  RunConfig(catalog, workload, threads, p_shards, p_inflight,
                            levels, p_mb, /*warm=*/false, store_path)});
  std::remove(store_path.c_str());

  std::printf("# persistence: fragment store boot states "
              "(shards %d, inflight %zu, %zu queries)\n",
              p_shards, p_inflight, workload.size());
  std::printf("%10s %8s %8s %12s %10s %10s %10s\n", "mode", "wall_s", "qps",
              "ttff_p50_ms", "frag_hit%", "cold_hits", "promotions");
  json += "  \"persistence\": {\n";
  json += "    \"shards\": " + std::to_string(p_shards) +
          ", \"inflight\": " + std::to_string(p_inflight) +
          ", \"fragment_mb\": " + std::to_string(p_mb) + ",\n";
  json += "    \"modes\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigResult& r = rows[i].r;
    const double qps = r.wall_s > 0.0 ? r.queries / r.wall_s : 0.0;
    const double p50 = Percentile(r.ttff_ms, 0.50);
    const uint64_t lookups = r.stats.fragment_hits + r.stats.fragment_misses;
    const double hit_rate =
        lookups > 0 ? 100.0 * static_cast<double>(r.stats.fragment_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    std::printf("%10s %8.3f %8.2f %12.3f %10.1f %10llu %10llu\n",
                rows[i].mode, r.wall_s, qps, p50, hit_rate,
                static_cast<unsigned long long>(r.stats.fragment_cold_hits),
                static_cast<unsigned long long>(r.stats.fragment_promotions));
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "%s\n      {\"mode\": \"%s\", \"queries\": %zu, \"wall_s\": %.6f, "
        "\"qps\": %.3f, \"ttff_p50_ms\": %.3f, \"fragment_hit_rate\": %.4f, "
        "\"fragment_cold_hits\": %llu, \"fragment_promotions\": %llu, "
        "\"fragment_publishes\": %llu}",
        i == 0 ? "" : ",", rows[i].mode, r.queries, r.wall_s, qps, p50,
        hit_rate / 100.0,
        static_cast<unsigned long long>(r.stats.fragment_cold_hits),
        static_cast<unsigned long long>(r.stats.fragment_promotions),
        static_cast<unsigned long long>(r.stats.fragment_publishes));
    json += row;
  }
  json += "\n    ]\n  }\n}\n";

  const char* json_path = "BENCH_service.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  return 0;
}
