// Ablation C: the two Prune design decisions of §4.2.
//
// Decision 1 — resolution-restricted comparisons: a plan pruned at
// resolution r is only compared against result plans inserted at levels
// <= r. This choice only matters once the resolution resets after a
// bounds change while high-resolution state exists; the alternative
// (comparing against all levels) makes the early invocations after the
// reset pay for state accumulated at the finest levels. The scenario
// below therefore climbs to the finest resolution, tightens the time
// bound (resolution resets), climbs again, relaxes the bound (reset
// again), and climbs once more — and reports per-invocation times and
// dominance checks for both variants.
//
// Decision 2 — result plans are never discarded: quantified by the
// `redundant` column, the number of result entries for the full query
// that are dominated by another entry (kept because they may serve as
// sub-plans; the space cost of O(current-resolution) invocation time).
#include <string>
#include <vector>

#include "bench_common.h"
#include "pareto/frontier.h"

int main() {
  using namespace moqo;
  using bench::Timer;

  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 6);
  const Query& query = blocks.at(0);
  const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                            CostModelParams{},
                            bench::BenchOperatorOptions());
  const ResolutionSchedule schedule(10, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);

  std::printf("=== Prune design ablation on TPC-H %s (6 tables, 10 "
              "levels, alpha_T=1.01) ===\n\n", query.name.c_str());

  // Calibrate a time bound at the coarse median.
  double median_time = 0.0;
  {
    IncrementalOptimizer probe(factory, schedule, inf);
    probe.Optimize(inf, 0);
    std::vector<double> times;
    for (const auto& e : probe.ResultPlans(inf, 0)) {
      times.push_back(e.cost[0]);
    }
    std::sort(times.begin(), times.end());
    median_time = times.empty() ? 1.0 : times[times.size() / 2];
  }
  CostVector tight = CostVector::Infinite(3);
  tight[0] = median_time;

  struct Step {
    const char* phase;
    int r;
    const CostVector* bounds;
  };
  // Start bounded: plans exceeding the bound park as candidates across
  // all resolution levels. Relaxing then drains them at r = 0 while
  // fine-resolution result state already exists — exactly the situation
  // where the two comparison policies differ.
  std::vector<Step> script;
  for (int r = 0; r <= 9; ++r) script.push_back({"bounded", r, &tight});
  for (int r = 0; r <= 9; ++r) script.push_back({"relax", r, &inf});
  for (int r = 0; r <= 9; ++r) script.push_back({"tighten", r, &tight});

  struct Variant {
    const char* name;
    OptimizerOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper design (restricted checks, skip-ahead "
                      "parking, sorted pruning)", {}});
  {
    OptimizerOptions o;
    o.prune_against_all_resolutions = true;
    variants.push_back({"dominance check vs ALL resolutions", o});
  }
  {
    OptimizerOptions o;
    o.park_next_level_only = true;
    variants.push_back({"paper-literal parking at r+1 (no skip-ahead)", o});
  }
  {
    OptimizerOptions o;
    o.sorted_pruning = false;
    variants.push_back({"unsorted pruning (arrival order)", o});
  }

  for (const Variant& variant : variants) {
    const OptimizerOptions& options = variant.options;
    std::printf("--- %s ---\n", variant.name);
    std::printf("%-4s %-8s %-4s %10s %14s %12s %12s\n", "inv", "phase",
                "r", "inv_ms", "dom_checks", "frontier", "redundant");
    IncrementalOptimizer optimizer(factory, schedule, tight, options);
    uint64_t prev_checks = 0;
    double total_ms = 0.0;
    int inv = 0;
    for (const Step& step : script) {
      ++inv;
      Timer t;
      optimizer.Optimize(*step.bounds, step.r);
      const double ms = t.ElapsedMs();
      total_ms += ms;
      const auto plans = optimizer.ResultPlans(*step.bounds, step.r);
      ParetoFrontier frontier;
      for (const auto& e : plans) frontier.Insert(e.cost, e.id);
      const uint64_t checks =
          optimizer.counters().dominance_checks - prev_checks;
      prev_checks = optimizer.counters().dominance_checks;
      std::printf("%-4d %-8s %-4d %10.3f %14llu %12zu %12zu\n", inv,
                  step.phase, step.r, ms,
                  static_cast<unsigned long long>(checks), frontier.size(),
                  plans.size() - frontier.size());
    }
    std::printf("TOTAL %.3f ms; result entries %zu, candidates %zu, "
                "plans generated %llu\n\n", total_ms,
                optimizer.NumResultEntries(),
                optimizer.NumCandidateEntries(),
                static_cast<unsigned long long>(
                    optimizer.counters().plans_generated));
  }
  return 0;
}
