// Ablation B: incrementality under user bound changes.
//
// The paper's motivating scenario (§1, Figure 1) has the user dragging
// cost bounds while the optimizer keeps refining. This bench scripts such
// an interaction on the 6-table TPC-H Q5 block — refine, tighten the time
// bound, refine, tighten again, relax to infinity, refine — and compares
// per-invocation times of IAMA (which keeps all state) against the
// memoryless algorithm (which restarts from scratch on every invocation).
//
// Expected shape: tightening is almost free for IAMA (candidates and
// results are reused; §4.2), relaxing costs only the newly visible work,
// while the memoryless algorithm pays the full optimization time on every
// single invocation.
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct ScriptStep {
  std::string label;
  int resolution;
  // Bounds factory given the median time of the unbounded frontier.
  double time_bound_factor;  // <= 0 : unbounded.
};

}  // namespace

int main() {
  using namespace moqo;
  using bench::Timer;

  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 6);
  const Query& q5 = blocks.at(0);
  const PlanFactory factory(q5, catalog, MetricSchema::Standard3(),
                            CostModelParams{},
                            bench::BenchOperatorOptions());
  const ResolutionSchedule schedule(10, 1.01, 0.2);
  const CostVector inf = CostVector::Infinite(3);

  // Calibrate bound positions from a quick unbounded coarse pass.
  double median_time = 0.0;
  {
    IncrementalOptimizer probe(factory, schedule, inf);
    probe.Optimize(inf, 0);
    auto plans = probe.ResultPlans(inf, 0);
    std::vector<double> times;
    for (const auto& e : plans) times.push_back(e.cost[0]);
    std::sort(times.begin(), times.end());
    median_time = times.empty() ? 1.0 : times[times.size() / 2];
  }

  // The interaction script: (label, resolution, time bound).
  std::vector<ScriptStep> script;
  for (int r = 0; r <= 4; ++r) script.push_back({"explore", r, -1.0});
  for (int r = 0; r <= 4; ++r) script.push_back({"tighten1", r, 4.0});
  for (int r = 0; r <= 4; ++r) script.push_back({"tighten2", r, 1.5});
  for (int r = 0; r <= 9; ++r) script.push_back({"relax", r, -1.0});

  const auto bounds_for = [&](const ScriptStep& step) {
    if (step.time_bound_factor <= 0.0) return inf;
    CostVector b = CostVector::Infinite(3);
    b[0] = median_time * step.time_bound_factor;
    return b;
  };

  std::printf("=== Bounds-change interaction on TPC-H Q5 (6 tables, "
              "10 levels, alpha_T=1.01) ===\n\n");
  std::printf("%-4s %-10s %-4s %14s %16s\n", "inv", "phase", "r",
              "iama_ms", "memoryless_ms");

  IncrementalOptimizer iama(factory, schedule, inf);
  const MemorylessDriver memoryless(factory, schedule);
  double iama_total = 0.0, memless_total = 0.0;
  double iama_max = 0.0, memless_max = 0.0;
  int inv = 0;
  for (const ScriptStep& step : script) {
    ++inv;
    const CostVector bounds = bounds_for(step);
    Timer ti;
    iama.Optimize(bounds, step.resolution);
    const double iama_ms = ti.ElapsedMs();
    Timer tm;
    const OneShotResult ml =
        memoryless.RunInvocation(step.resolution, bounds);
    (void)ml;
    const double memless_ms = tm.ElapsedMs();
    iama_total += iama_ms;
    memless_total += memless_ms;
    iama_max = std::max(iama_max, iama_ms);
    memless_max = std::max(memless_max, memless_ms);
    std::printf("%-4d %-10s %-4d %14.3f %16.3f\n", inv, step.label.c_str(),
                step.resolution, iama_ms, memless_ms);
  }

  std::printf("\nTOTAL  iama=%.3f ms  memoryless=%.3f ms  speedup=%.2fx\n",
              iama_total, memless_total,
              iama_total > 0.0 ? memless_total / iama_total : 0.0);
  std::printf("MAX    iama=%.3f ms  memoryless=%.3f ms  speedup=%.2fx\n",
              iama_max, memless_max,
              iama_max > 0.0 ? memless_max / iama_max : 0.0);
  std::printf("counters: %s\n", iama.counters().ToString().c_str());
  return 0;
}
