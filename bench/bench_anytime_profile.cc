// Reproduces the Figure 2 concepts of the paper on a real query:
//  (a) anytime behavior — result quality (approximation factor reached and
//      frontier size) as a function of elapsed time, IAMA vs the one-shot
//      algorithm which only reports at the end;
//  (b) incremental behavior — per-invocation run time over the invocation
//      series, IAMA vs the memoryless algorithm.
// Workload: the 8-table TPC-H Q8 block, 20 resolution levels.
#include <cstdlib>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace moqo;
  using bench::Timer;

  // Optional overrides: bench_anytime_profile [alpha_T alpha_S levels].
  const double alpha_target = argc > 1 ? std::atof(argv[1]) : 1.01;
  const double alpha_step = argc > 2 ? std::atof(argv[2]) : 0.05;
  const int levels = argc > 3 ? std::atoi(argv[3]) : 20;

  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 8);
  const Query& q8 = blocks.at(0);
  const PlanFactory factory(q8, catalog, MetricSchema::Standard3(),
                            CostModelParams{},
                            bench::BenchOperatorOptions());
  const ResolutionSchedule schedule(levels, alpha_target, alpha_step);
  const CostVector inf = CostVector::Infinite(3);

  std::printf("=== Anytime / incremental profile on TPC-H Q8 "
              "(8 tables, %d levels, alpha_T=%.4g, alpha_S=%.4g) ===\n\n",
              levels, alpha_target, alpha_step);

  // (a)+(b): IAMA invocation series.
  std::printf("--- incremental anytime (IAMA) ---\n");
  std::printf("%-6s %-8s %12s %14s %10s %12s\n", "inv", "alpha",
              "inv_ms", "cumulative_ms", "frontier", "plans_total");
  {
    Timer ctor;
    IncrementalOptimizer optimizer(factory, schedule, inf);
    double cumulative = ctor.ElapsedMs();
    for (int r = 0; r <= schedule.MaxResolution(); ++r) {
      Timer t;
      optimizer.Optimize(inf, r);
      const double ms = t.ElapsedMs();
      cumulative += ms;
      std::printf("%-6d %-8.4f %12.3f %14.3f %10zu %12zu\n", r + 1,
                  schedule.Alpha(r), ms, cumulative,
                  optimizer.ResultPlans(inf, r).size(),
                  optimizer.arena().size());
    }
    std::printf("counters: %s\n\n", optimizer.counters().ToString().c_str());
  }

  // (b): memoryless invocation series — run time grows from scratch every
  // time, final invocation equals the one-shot run.
  std::printf("--- memoryless ---\n");
  std::printf("%-6s %-8s %12s %14s %10s\n", "inv", "alpha", "inv_ms",
              "cumulative_ms", "frontier");
  {
    const MemorylessDriver driver(factory, schedule);
    double cumulative = 0.0;
    for (int r = 0; r <= schedule.MaxResolution(); ++r) {
      Timer t;
      const OneShotResult result = driver.RunInvocation(r, inf);
      const double ms = t.ElapsedMs();
      cumulative += ms;
      std::printf("%-6d %-8.4f %12.3f %14.3f %10zu\n", r + 1,
                  schedule.Alpha(r), ms, cumulative,
                  result.FinalPlans(8).size());
    }
  }
  std::printf("\n");

  // (a): the one-shot algorithm delivers a single result at the end.
  std::printf("--- one-shot ---\n");
  {
    Timer t;
    const OneShotResult result =
        RunOneShot(factory, schedule.alpha_target(), inf);
    std::printf("single invocation: %.3f ms, frontier %zu plans\n",
                t.ElapsedMs(), result.FinalPlans(8).size());
  }
  return 0;
}  // NOLINT(readability/fn_size)
