// Ablation D: sensitivity to join-graph topology.
//
// The TPC-H workload is mostly chains and small stars; this bench checks
// that IAMA's advantage over the baselines is not an artifact of that
// shape by sweeping synthetic 6-table queries across topologies (chain,
// star, cycle, clique) with randomized cardinalities and selectivities.
#include "bench_common.h"
#include "query/generator.h"

int main() {
  using namespace moqo;
  using bench::InvocationTimes;

  const struct {
    Topology topology;
    const char* name;
  } kTopologies[] = {
      {Topology::kChain, "chain"},
      {Topology::kStar, "star"},
      {Topology::kCycle, "cycle"},
      {Topology::kClique, "clique"},
  };
  const ResolutionSchedule schedule(10, 1.01, 0.2);
  constexpr int kQueriesPerTopology = 3;

  std::printf("=== Random 6-table topologies, 10 levels, alpha_T=1.01 "
              "===\n\n");
  std::printf("%-8s %-22s %12s %12s %12s\n", "topology", "algorithm",
              "total_ms", "avg_inv_ms", "max_inv_ms");
  for (const auto& topo : kTopologies) {
    InvocationTimes iama_all, memless_all, oneshot_all;
    Rng rng(0x70 + static_cast<uint64_t>(topo.topology));
    for (int i = 0; i < kQueriesPerTopology; ++i) {
      Catalog catalog;
      GeneratorOptions gen;
      gen.num_tables = 6;
      gen.topology = topo.topology;
      const Query query = RandomQuery(rng, gen, &catalog);
      const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                                CostModelParams{},
                                bench::BenchOperatorOptions());
      for (double v : bench::RunIamaSeries(factory, schedule).ms) {
        iama_all.ms.push_back(v);
      }
      for (double v : bench::RunMemorylessSeries(factory, schedule).ms) {
        memless_all.ms.push_back(v);
      }
      for (double v : bench::RunOneShotOnce(factory, schedule).ms) {
        oneshot_all.ms.push_back(v);
      }
    }
    const auto row = [&](const char* name, const InvocationTimes& t) {
      std::printf("%-8s %-22s %12.3f %12.3f %12.3f\n", topo.name, name,
                  t.Total(), t.Total() / t.ms.size(), t.Max());
    };
    row("incremental_anytime", iama_all);
    row("memoryless", memless_all);
    row("one_shot", oneshot_all);
  }
  return 0;
}
