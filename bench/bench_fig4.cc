// Reproduces Figure 4 of the paper: average time per optimizer invocation
// for TPC-H sub-queries at fine target precision (α_T = 1.005, α_S = 0.5),
// with 1, 5, and 20 resolution levels.
//
// Expected shape (paper §6.2): optimization is substantially more
// expensive than at α_T = 1.01; IAMA's relative advantage grows — up to
// 14x over memoryless and up to 37x over one-shot in the paper.
#include "bench_common.h"

int main() {
  std::printf("=== Figure 4: avg time per optimizer invocation, "
              "alpha_T=1.005 ===\n\n");
  for (int levels : {1, 5, 20}) {
    moqo::bench::RunFigureConfig(1.005, 0.5, levels, /*report_max=*/false);
  }
  return 0;
}
