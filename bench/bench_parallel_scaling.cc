// Parallel phase-2 scaling: speedup of the sharded enumeration engine
// over the single-threaded reference as the thread count grows.
//
// Two workloads:
//   * random 10-relation topologies (chain / star / cycle) — the deep
//     plan spaces where level-parallel sharding has the most to win;
//   * the largest TPC-H query blocks (the figure benchmarks' workload).
//
// For each (workload, threads) cell the full refinement series r = 0..rM
// is run and the total wall time reported, plus the speedup against the
// 1-thread run of the same workload. Frontier equivalence between the
// runs is guaranteed by design (see OptimizerOptions::num_threads) and
// asserted in parallel_optimizer_test; this binary only measures time.
//
// Usage: bench_parallel_scaling [max_threads] [--full]   (default: 8)
//
// The default configuration is sized to finish in minutes on a laptop
// core; --full switches to the figure benchmarks' operator space and a
// finer schedule for machine-scale runs.
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "query/generator.h"

int main(int argc, char** argv) {
  using namespace moqo;
  using bench::InvocationTimes;

  int max_threads = 8;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      max_threads = std::atoi(argv[i]);
    }
  }
  if (max_threads < 1) max_threads = 1;
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  const ResolutionSchedule schedule =
      full ? ResolutionSchedule(8, 1.01, 0.2)
           : ResolutionSchedule(6, 1.05, 0.3);
  OperatorOptions op_options = bench::BenchOperatorOptions();
  if (!full) {
    op_options.max_workers = 8;
    op_options.max_sampling_rates_per_table = 2;
  }

  std::printf("=== Parallel phase-2 scaling (levels=%d, alpha_T=%.3f) "
              "===\n\n",
              schedule.NumLevels(), schedule.alpha_target());
  std::printf("%-28s %-8s %12s %12s %10s\n", "workload", "threads",
              "total_ms", "max_inv_ms", "speedup");

  const auto report = [&](const char* workload,
                          const std::function<InvocationTimes(int)>& run) {
    double base_ms = 0.0;
    for (const int threads : thread_counts) {
      const InvocationTimes times = run(threads);
      const double total = times.Total();
      if (threads == 1) base_ms = total;
      std::printf("%-28s %-8d %12.3f %12.3f %9.2fx\n", workload, threads,
                  total, times.Max(),
                  total > 0.0 ? base_ms / total : 0.0);
    }
    std::printf("\n");
  };

  // Random 10-relation topologies.
  const struct {
    Topology topology;
    const char* name;
  } kTopologies[] = {
      {Topology::kChain, "random10/chain"},
      {Topology::kStar, "random10/star"},
      {Topology::kCycle, "random10/cycle"},
  };
  for (const auto& topo : kTopologies) {
    report(topo.name, [&](int threads) {
      InvocationTimes all;
      Rng rng(0x5CA1E + static_cast<uint64_t>(topo.topology));
      const int queries = full ? 2 : 1;
      for (int i = 0; i < queries; ++i) {
        Catalog catalog;
        GeneratorOptions gen;
        gen.num_tables = 10;
        gen.topology = topo.topology;
        const Query query = RandomQuery(rng, gen, &catalog);
        const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                                  CostModelParams{}, op_options);
        for (double v :
             bench::RunIamaSeries(factory, schedule, threads).ms) {
          all.ms.push_back(v);
        }
      }
      return all;
    });
  }

  // Largest TPC-H query blocks.
  {
    const Catalog catalog = MakeTpchCatalog();
    int max_tables = 0;
    for (int t : TpchBlockTableCounts(catalog)) {
      max_tables = std::max(max_tables, t);
    }
    report("tpch/largest-blocks", [&](int threads) {
      InvocationTimes all;
      for (const Query& query : TpchBlocksWithTables(catalog, max_tables)) {
        const PlanFactory factory(query, catalog, MetricSchema::Standard3(),
                                  CostModelParams{}, op_options);
        for (double v :
             bench::RunIamaSeries(factory, schedule, threads).ms) {
          all.ms.push_back(v);
        }
      }
      return all;
    });
  }

  return 0;
}
