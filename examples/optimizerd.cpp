// optimizerd — the anytime multi-objective optimizer as a network
// service: an OptimizerService behind the TCP wire protocol
// (docs/NETWORK_API.md), with per-tenant quotas, load shedding, and
// graceful drain for rolling restarts.
//
// Usage:
//   ./build/optimizerd [--port P] [--host H] [--threads N] [--shards N]
//                      [--max-inflight N] [--max-iterations N]
//                      [--shed-hint-ms D]
//                      [--quota TENANT=MAX[:WEIGHT]] [--default-quota MAX[:WEIGHT]]
//                      [--max-connections N] [--fragment-cache-mb M]
//                      [--store-path FILE] [--store-budget-mb M]
//                      [--fsync MODE] [--workers N] [--dist-min-tables K]
//
//   --port P           TCP port; 0 (default) picks an ephemeral port
//   --host H           bind address (default 127.0.0.1)
//   --threads N        worker budget across shards (default 4)
//   --shards N         scheduler shards (default 2)
//   --max-inflight N   run-count bound; beyond it submits are load-shed
//                      with kShedding + retry-after (default 64; 0 = off)
//   --max-iterations N per-submission step ceiling; larger requests are
//                      rejected with kInvalidArgument so one client
//                      cannot park a near-infinite run in an in-flight
//                      slot (default 100000; 0 = off)
//   --shed-hint-ms D   retry-after hint per queued run (default 25)
//   --quota T=M[:W]    per-tenant in-flight quota and fair-share weight;
//                      repeatable (e.g. --quota gold=32:4 --quota free=2)
//   --default-quota M[:W]  quota for tenants without an explicit entry
//   --max-connections N    refuse connections beyond N (default 0 = off)
//   --fragment-cache-mb M  cross-query fragment store budget (default 16)
//   --store-path FILE  persist the fragment store's cold tier to FILE
//                      (append-only log; replayed at boot, so a restart
//                      with the same path warm-starts bit-identically).
//                      Prints one "optimizerd: fragment store ..." replay
//                      report line before "listening" (scripts parse it)
//   --store-budget-mb M  cold-tier *live*-byte budget: once the log's
//                      live bytes exceed it, the oldest fragments are
//                      dropped (demotion-to-drop) so a long-running
//                      daemon's disk footprint stays bounded (0 = off)
//   --fsync MODE       fragment-log durability: none (default; mmap'd
//                      pages survive process death regardless), interval
//                      (msync on a periodic tick of the write-behind
//                      thread), always (msync every append)
//   --workers N        fork N optimizer worker processes and route large
//                      queries' phase-2 enumeration across them
//                      (docs/DISTRIBUTED.md). Prints one
//                      "optimizerd: workers PID..." line before
//                      "listening" (crash drills parse it). Results stay
//                      bit-identical to single-process runs — including
//                      when a worker is SIGKILLed mid-query (0 = off)
//   --dist-min-tables K  smallest query (tables) routed to the worker
//                      tier; smaller ones run in-process (default 4)
//

// Prints exactly one line "optimizerd: listening on HOST:PORT" once
// serving (scripts parse it; see tests/optimizerd_smoke.sh), then blocks.
// SIGINT/SIGTERM trigger a graceful drain: admission closes (new submits
// get kDraining), in-flight runs finish and deliver results to their
// clients, then the process exits 0 with a stats summary.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "catalog/tpch.h"
#include "dist/backend.h"
#include "net/server.h"
#include "service/optimizer_service.h"

using namespace moqo;

namespace {

// Parses "MAX" or "MAX:WEIGHT" into a TenantQuota.
TenantQuota ParseQuota(const char* spec) {
  TenantQuota q;
  q.max_inflight = std::atoi(spec);
  const char* colon = std::strchr(spec, ':');
  if (colon != nullptr) q.weight = std::atoi(colon + 1);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.num_shards = 2;
  service_options.max_inflight_runs = 64;
  service_options.max_iterations_limit = 100000;
  service_options.fragment_cache_bytes = 16u << 20;
  net::ServerOptions server_options;
  int workers = 0;
  int dist_min_tables = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      server_options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      server_options.host = next();
    } else if (arg == "--threads") {
      service_options.num_threads = std::atoi(next());
    } else if (arg == "--shards") {
      service_options.num_shards = std::atoi(next());
    } else if (arg == "--max-inflight") {
      service_options.max_inflight_runs =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--max-iterations") {
      service_options.max_iterations_limit = std::atoi(next());
    } else if (arg == "--shed-hint-ms") {
      service_options.shed_retry_hint_ms = std::atof(next());
    } else if (arg == "--quota") {
      const char* spec = next();
      const char* eq = std::strchr(spec, '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "--quota wants TENANT=MAX[:WEIGHT]\n");
        return 2;
      }
      service_options.tenant_quotas[std::string(spec, eq)] =
          ParseQuota(eq + 1);
    } else if (arg == "--default-quota") {
      service_options.default_quota = ParseQuota(next());
    } else if (arg == "--max-connections") {
      server_options.max_connections = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--fragment-cache-mb") {
      service_options.fragment_cache_bytes =
          static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--store-path") {
      service_options.fragment_store_path = next();
    } else if (arg == "--store-budget-mb") {
      service_options.fragment_cold_budget_bytes =
          static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--fsync") {
      const std::string mode = next();
      if (mode == "none") {
        service_options.fragment_fsync = FragmentFsyncMode::kNone;
      } else if (mode == "interval") {
        service_options.fragment_fsync = FragmentFsyncMode::kInterval;
      } else if (mode == "always") {
        service_options.fragment_fsync = FragmentFsyncMode::kAlways;
      } else {
        std::fprintf(stderr, "--fsync wants none|interval|always\n");
        return 2;
      }
    } else if (arg == "--workers") {
      workers = std::atoi(next());
    } else if (arg == "--dist-min-tables") {
      dist_min_tables = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Block the shutdown signals before any thread spawns, so every
  // service/server thread inherits the mask and sigwait below is the
  // only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  Catalog catalog = MakeTpchCatalog();

  // Fork the worker tier before the service spawns its threads (fork
  // and threads don't mix) and declare it first so it outlives the
  // service that routes runs into it. Children inherit the blocked
  // signal mask, which is fine: they exit on socket EOF at teardown.
  std::unique_ptr<dist::DistributedBackend> backend;
  if (workers > 0) {
    dist::BackendOptions dist_options;
    dist_options.num_workers = static_cast<uint32_t>(workers);
    dist_options.forked = true;
    dist_options.worker.catalog = catalog.Snapshot();
    dist_options.worker.schema = service_options.schema;
    dist_options.worker.cost_params = service_options.cost_params;
    dist_options.worker.operator_options = service_options.operator_options;
    backend = std::make_unique<dist::DistributedBackend>(dist_options);
    service_options.distributed_backend = backend.get();
    service_options.distributed_min_tables = dist_min_tables;
    std::printf("optimizerd: workers");
    for (pid_t pid : backend->worker_pids()) {
      std::printf(" %d", static_cast<int>(pid));
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  OptimizerService service(catalog, service_options);
  if (!service_options.fragment_store_path.empty() &&
      service.fragment_store() != nullptr) {
    // Replay report (before "listening": the smoke test asserts a warm
    // boot recovers fragments and sheds at most one torn record).
    const FragmentStoreStats fs = service.fragment_store()->Stats();
    const Status cold = service.fragment_store()->cold_status();
    std::printf(
        "optimizerd: fragment store %s: replayed %llu fragments, epoch %llu, "
        "torn bytes %llu, decode errors %llu%s%s\n",
        service_options.fragment_store_path.c_str(),
        static_cast<unsigned long long>(fs.replayed_fragments),
        static_cast<unsigned long long>(service.fragment_store()->epoch()),
        static_cast<unsigned long long>(fs.replay_torn_bytes),
        static_cast<unsigned long long>(fs.cold_decode_errors),
        cold.ok() ? "" : ", DEGRADED: ", cold.ok() ? "" : cold.ToString().c_str());
    std::fflush(stdout);
  }
  net::OptimizerServer server(&service, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "optimizerd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("optimizerd: listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);

  // Graceful drain: close admission first, let in-flight runs finish
  // and stream their results out, then tear the sockets down.
  std::printf("optimizerd: signal %d, draining\n", sig);
  std::fflush(stdout);
  server.BeginDrain();
  service.WaitIdle();
  server.Shutdown();
  if (service.fragment_store() != nullptr) {
    // Push the tail of the write-behind queue to disk before reporting
    // (the store destructor would too; this makes the summary exact).
    service.fragment_store()->Flush();
  }

  const ServiceStats stats = service.stats();
  if (backend != nullptr) {
    std::printf(
        "optimizerd: dist runs %llu, rejected %llu, live workers %zu/%d\n",
        static_cast<unsigned long long>(backend->runs_started()),
        static_cast<unsigned long long>(backend->runs_rejected()),
        backend->live_workers(), workers);
  }
  if (!service_options.fragment_store_path.empty()) {
    std::printf(
        "optimizerd: store publishes %llu, cold hits %llu, promotions %llu, "
        "demotions %llu, compactions %llu\n",
        static_cast<unsigned long long>(stats.fragment_publishes),
        static_cast<unsigned long long>(stats.fragment_cold_hits),
        static_cast<unsigned long long>(stats.fragment_promotions),
        static_cast<unsigned long long>(stats.fragment_demotions),
        static_cast<unsigned long long>(stats.fragment_compactions));
  }
  std::printf(
      "optimizerd: drained. submitted %llu, completed %llu, cancelled %llu, "
      "cache hits %llu, coalesced %llu, quota-rejected %llu, shed %llu, "
      "drain-rejected %llu, snapshot drops %llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.quota_rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.drain_rejected),
      static_cast<unsigned long long>(stats.snapshot_drops));
  return 0;
}
