// workload_server — replays a mixed multi-query stream through the
// OptimizerService: every TPC-H join block plus a batch of random-topology
// queries, all optimized concurrently on one shared worker pool.
//
// Usage:
//   ./build/workload_server [--threads N] [--shards N] [--random N]
//                           [--repeat N] [--deadline-ms D]
//                           [--fragment-cache-mb M] [--refresh-drift F]
//                           [--store-path FILE]
//
//   --threads N      total worker budget across all shards (default 4)
//   --shards N       scheduler shards, each with its own run queue and
//                    pool partition (default 2)
//   --random N       number of random-topology queries mixed in (default 8)
//   --repeat N       how many times the stream is replayed (default 2);
//                    duplicates still in flight coalesce onto the running
//                    leader, identical replays are served from the
//                    frontier cache, and each replay round > 0 swaps
//                    every random query for an overlapping variant (one
//                    more trailing table trimmed per round, down to 3
//                    tables) that neither cache nor coalescing can serve
//                    — the fragment store's case
//   --deadline-ms D  per-query deadline (default: none)
//   --fragment-cache-mb M  byte budget (MiB) of the cross-query plan-
//                    fragment store (default 16; 0 disables sharing).
//                    Overlapping queries seed shared sub-join-graph
//                    frontiers from completed runs instead of
//                    re-deriving them (docs/FRAGMENT_SHARING.md)
//   --refresh-drift F  the `refresh` command, exercised between replay
//                    rounds: scale every TPC-H base table's cardinality
//                    by F (statistics drift), then call
//                    OptimizerService::RefreshCatalog(). Post-refresh
//                    rounds provably re-optimize — no cache hits, no
//                    old-epoch fragment hits — on the new statistics
//                    (docs/CATALOG_REFRESH.md). 0 disables (default)
//   --store-path FILE  persist the fragment store's cold tier to FILE
//                    (docs/FRAGMENT_PERSISTENCE.md). The log is replayed
//                    at startup — rerunning with the same path starts
//                    warm — and a tiering counter line joins the summary
//
// Prints one line per finished query (state, iterations, frontier size,
// time to first frontier) and a summary with queries/sec, p50/p99
// time-to-first-frontier, cache hits, catalog refreshes, and
// fragment-store hit/miss/publish/evict counters.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace moqo;

namespace {

using Clock = std::chrono::steady_clock;

// Per-query record shared with the snapshot observer: the observer runs
// on the service's scheduler thread (or inside Submit on a cache hit).
struct Track {
  std::string name;
  Clock::time_point submitted;
  std::atomic<bool> first_seen{false};
  std::atomic<double> ttff_ms{0.0};  // Time to first frontier.
  QueryId id = kInvalidQueryId;
};

// An overlapping-but-distinct variant of `q`: the last `trim` table
// references (trailing leaves in the chain/star/cycle topologies this
// is applied to) and every predicate touching them are dropped,
// preserving the remaining predicate sequence — so the variant shares
// every surviving sub-join-graph with `q` and seeds it from the
// fragment store instead of re-deriving it. Each replay round trims one
// table more (down to 3 tables), so successive rounds stay distinct
// canonical queries; once the cap is reached, further rounds repeat a
// variant and are served by the whole-query cache instead.
Query TrimLastTables(const Query& q, int trim) {
  trim = std::min(trim, q.NumTables() - 3);
  Query out;
  out.name = q.name + "~" + std::to_string(trim);
  out.tables.assign(q.tables.begin(), q.tables.end() - trim);
  const int kept = q.NumTables() - trim;
  for (const JoinPredicate& j : q.joins) {
    if (j.left < kept && j.right < kept) out.joins.push_back(j);
  }
  return out;
}

const char* StateName(QueryState s) {
  switch (s) {
    case QueryState::kQueued: return "queued";
    case QueryState::kDone: return "done";
    case QueryState::kCancelled: return "cancelled";
    case QueryState::kExpired: return "expired";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int shards = 2;
  int num_random = 8;
  int repeat = 2;
  double deadline_ms = 0.0;
  int fragment_cache_mb = 16;
  double refresh_drift = 0.0;
  std::string store_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--threads" && has_next) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--shards" && has_next) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--random" && has_next) {
      num_random = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && has_next) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && has_next) {
      deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--fragment-cache-mb" && has_next) {
      fragment_cache_mb = std::atoi(argv[++i]);
    } else if (arg == "--refresh-drift" && has_next) {
      refresh_drift = std::atof(argv[++i]);
    } else if (arg == "--store-path" && has_next) {
      store_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: workload_server [--threads N] [--shards N] "
                   "[--random N] [--repeat N] [--deadline-ms D] "
                   "[--fragment-cache-mb M] [--refresh-drift F] "
                   "[--store-path FILE]\n");
      return 1;
    }
  }
  if (threads < 1 || shards < 1 || num_random < 0 || repeat < 1 ||
      deadline_ms < 0.0 || fragment_cache_mb < 0 || refresh_drift < 0.0) {
    std::fprintf(stderr, "invalid flag value\n");
    return 1;
  }

  // Build the whole workload before the service starts: the service reads
  // the catalog concurrently, and RandomQuery appends tables to it.
  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> stream = TpchQueryBlocks(catalog);
  std::vector<bool> trimmable(stream.size(), false);
  Rng rng(2015);
  // Leaf-trimmable topologies only: dropping the last table of a chain,
  // star (the hub is t0), or cycle leaves a connected query.
  const Topology topologies[] = {Topology::kChain, Topology::kStar,
                                 Topology::kCycle};
  for (int i = 0; i < num_random; ++i) {
    GeneratorOptions gen;
    gen.num_tables = 4 + static_cast<int>(rng.UniformInt(0, 2));
    gen.topology = topologies[i % 3];
    Query q = RandomQuery(rng, gen, &catalog);
    q.name = "rand" + std::to_string(i);
    stream.push_back(std::move(q));
    trimmable.push_back(true);
  }

  ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.num_shards = shards;
  service_options.fragment_cache_bytes =
      static_cast<size_t>(fragment_cache_mb) << 20;
  service_options.fragment_store_path = store_path;
  OptimizerService service(catalog, service_options);
  if (!store_path.empty() && service.fragment_store() != nullptr) {
    const FragmentStoreStats fs = service.fragment_store()->Stats();
    std::printf(
        "fragment store %s: replayed %llu fragments (epoch %llu, torn bytes "
        "%llu)\n",
        store_path.c_str(),
        static_cast<unsigned long long>(fs.replayed_fragments),
        static_cast<unsigned long long>(service.fragment_store()->epoch()),
        static_cast<unsigned long long>(fs.replay_torn_bytes));
  }

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule::Moderate(5);
  submit.deadline_ms = deadline_ms;

  std::printf("workload_server: %zu queries x %d replays, %d threads x %d "
              "shards, deadline %s\n\n",
              stream.size(), repeat, threads, shards,
              deadline_ms > 0.0
                  ? (std::to_string(deadline_ms) + " ms").c_str()
                  : "none");

  std::printf("%-10s %-10s %6s %6s %10s %8s %6s\n", "query", "state",
              "iters", "plans", "ttff_ms", "cached", "coal");
  std::vector<double> ttffs;
  size_t total_queries = 0;
  const Clock::time_point wall_start = Clock::now();
  // Each round replays the full stream concurrently. Duplicates whose
  // first copy is still in flight coalesce onto the running leader; the
  // round barrier lets fully completed rounds serve later ones from the
  // frontier cache.
  for (int round = 0; round < repeat; ++round) {
    std::vector<std::unique_ptr<Track>> tracks;
    for (size_t qi = 0; qi < stream.size(); ++qi) {
      // Later rounds replay the random queries as overlapping variants:
      // distinct canonical keys (no cache/coalescing), shared
      // sub-join-graphs (fragment-store hits from earlier rounds'
      // publishes).
      const Query query = round > 0 && trimmable[qi]
                              ? TrimLastTables(stream[qi], round)
                              : stream[qi];
      auto track = std::make_unique<Track>();
      track->name = query.name;
      track->submitted = Clock::now();
      Track* t = track.get();
      StatusOr<QueryId> id = service.Submit(
          query, submit, [t](QueryId, const FrontierSnapshot&) {
            if (!t->first_seen.exchange(true)) {
              t->ttff_ms.store(MillisSince(t->submitted));
            }
          });
      if (!id.ok()) {
        std::fprintf(stderr, "submit %s failed: %s\n", query.name.c_str(),
                     id.status().ToString().c_str());
        continue;
      }
      track->id = id.value();
      tracks.push_back(std::move(track));
    }
    for (const auto& t : tracks) {
      const QueryResult result = service.Wait(t->id);
      ++total_queries;
      char ttff_text[32] = "-";  // No frontier (e.g. expired unstarted).
      if (t->first_seen.load()) {
        const double ttff = t->ttff_ms.load();
        ttffs.push_back(ttff);  // Only real frontiers enter the stats.
        std::snprintf(ttff_text, sizeof(ttff_text), "%.3f", ttff);
      }
      std::printf("%-10s %-10s %6d %6zu %10s %8s %6s\n", t->name.c_str(),
                  StateName(result.state), result.iterations,
                  result.frontier.plans.size(), ttff_text,
                  result.from_cache ? "yes" : "no",
                  result.coalesced ? "yes" : "no");
    }
    // The `refresh` command: drift the base statistics, then tell the
    // service. The next round optimizes on the new cardinalities — its
    // repeats provably miss the old cache/fragment generations.
    if (refresh_drift > 0.0 && round + 1 < repeat) {
      const TableId num_tpch_tables = static_cast<TableId>(kLineitem) + 1;
      for (TableId id = 0; id < num_tpch_tables; ++id) {
        const double new_cardinality =
            std::max(1.0, catalog.Get(id).cardinality * refresh_drift);
        const Status updated = catalog.UpdateStats(id, new_cardinality);
        if (!updated.ok()) {
          std::fprintf(stderr, "refresh: %s\n", updated.ToString().c_str());
          return 1;
        }
      }
      const uint64_t version = service.RefreshCatalog();
      std::printf("-- refresh: TPC-H cardinalities x%.2f, catalog "
                  "version %llu (cache dropped, fragment epoch bumped)\n",
                  refresh_drift, static_cast<unsigned long long>(version));
    }
  }
  const double wall_s = MillisSince(wall_start) / 1000.0;

  const ServiceStats stats = service.stats();
  std::printf("\n%zu queries in %.3f s = %.1f queries/sec\n", total_queries,
              wall_s,
              total_queries == 0 ? 0.0 : total_queries / wall_s);
  std::printf("time to first frontier (%zu with frontiers): p50 %.3f ms, "
              "p99 %.3f ms\n",
              ttffs.size(), Percentile(ttffs, 0.50),
              Percentile(ttffs, 0.99));
  std::printf("steps %llu, completed %llu, expired %llu, cache hits %llu, "
              "coalesced %llu, work steals %llu, catalog refreshes %llu\n",
              static_cast<unsigned long long>(stats.steps_executed),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.expired),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.work_steals),
              static_cast<unsigned long long>(stats.catalog_refreshes));
  const uint64_t fragment_lookups =
      stats.fragment_hits + stats.fragment_misses;
  if (fragment_cache_mb == 0) {
    std::printf("fragment store: disabled (--fragment-cache-mb 0)\n");
    return 0;
  }
  std::printf(
      "fragment store (%d MiB): hits %llu / %llu lookups (%.1f%%), "
      "publishes %llu, evictions %llu, resident %.1f KiB\n",
      fragment_cache_mb,
      static_cast<unsigned long long>(stats.fragment_hits),
      static_cast<unsigned long long>(fragment_lookups),
      fragment_lookups > 0
          ? 100.0 * static_cast<double>(stats.fragment_hits) /
                static_cast<double>(fragment_lookups)
          : 0.0,
      static_cast<unsigned long long>(stats.fragment_publishes),
      static_cast<unsigned long long>(stats.fragment_evictions),
      static_cast<double>(stats.fragment_bytes) / 1024.0);
  if (!store_path.empty()) {
    std::printf(
        "fragment store tiering: cold hits %llu, promotions %llu, demotions "
        "%llu, compactions %llu\n",
        static_cast<unsigned long long>(stats.fragment_cold_hits),
        static_cast<unsigned long long>(stats.fragment_promotions),
        static_cast<unsigned long long>(stats.fragment_demotions),
        static_cast<unsigned long long>(stats.fragment_compactions));
  }
  return 0;
}
