// workload_server — replays a mixed multi-query stream through the
// OptimizerService: every TPC-H join block plus a batch of random-topology
// queries, all optimized concurrently on one shared worker pool.
//
// Usage:
//   ./build/workload_server [--threads N] [--shards N] [--random N]
//                           [--repeat N] [--deadline-ms D]
//
//   --threads N      total worker budget across all shards (default 4)
//   --shards N       scheduler shards, each with its own run queue and
//                    pool partition (default 2)
//   --random N       number of random-topology queries mixed in (default 8)
//   --repeat N       how many times the stream is replayed (default 2);
//                    duplicates still in flight coalesce onto the running
//                    leader, later replays are served from the frontier
//                    cache
//   --deadline-ms D  per-query deadline (default: none)
//
// Prints one line per finished query (state, iterations, frontier size,
// time to first frontier) and a summary with queries/sec, p50/p99
// time-to-first-frontier, and cache hits.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "catalog/tpch.h"
#include "query/generator.h"
#include "query/tpch_queries.h"
#include "service/optimizer_service.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace moqo;

namespace {

using Clock = std::chrono::steady_clock;

// Per-query record shared with the snapshot observer: the observer runs
// on the service's scheduler thread (or inside Submit on a cache hit).
struct Track {
  std::string name;
  Clock::time_point submitted;
  std::atomic<bool> first_seen{false};
  std::atomic<double> ttff_ms{0.0};  // Time to first frontier.
  QueryId id = kInvalidQueryId;
};

const char* StateName(QueryState s) {
  switch (s) {
    case QueryState::kQueued: return "queued";
    case QueryState::kDone: return "done";
    case QueryState::kCancelled: return "cancelled";
    case QueryState::kExpired: return "expired";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int shards = 2;
  int num_random = 8;
  int repeat = 2;
  double deadline_ms = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--threads" && has_next) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--shards" && has_next) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--random" && has_next) {
      num_random = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && has_next) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && has_next) {
      deadline_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: workload_server [--threads N] [--shards N] "
                   "[--random N] [--repeat N] [--deadline-ms D]\n");
      return 1;
    }
  }
  if (threads < 1 || shards < 1 || num_random < 0 || repeat < 1 ||
      deadline_ms < 0.0) {
    std::fprintf(stderr, "invalid flag value\n");
    return 1;
  }

  // Build the whole workload before the service starts: the service reads
  // the catalog concurrently, and RandomQuery appends tables to it.
  Catalog catalog = MakeTpchCatalog();
  std::vector<Query> stream = TpchQueryBlocks(catalog);
  Rng rng(2015);
  const Topology topologies[] = {Topology::kChain, Topology::kStar,
                                 Topology::kCycle, Topology::kRandomTree};
  for (int i = 0; i < num_random; ++i) {
    GeneratorOptions gen;
    gen.num_tables = 4 + static_cast<int>(rng.UniformInt(0, 2));
    gen.topology = topologies[i % 4];
    Query q = RandomQuery(rng, gen, &catalog);
    q.name = "rand" + std::to_string(i);
    stream.push_back(std::move(q));
  }

  ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.num_shards = shards;
  OptimizerService service(catalog, service_options);

  SubmitOptions submit;
  submit.iama.schedule = ResolutionSchedule::Moderate(5);
  submit.deadline_ms = deadline_ms;

  std::printf("workload_server: %zu queries x %d replays, %d threads x %d "
              "shards, deadline %s\n\n",
              stream.size(), repeat, threads, shards,
              deadline_ms > 0.0
                  ? (std::to_string(deadline_ms) + " ms").c_str()
                  : "none");

  std::printf("%-10s %-10s %6s %6s %10s %8s %6s\n", "query", "state",
              "iters", "plans", "ttff_ms", "cached", "coal");
  std::vector<double> ttffs;
  size_t total_queries = 0;
  const Clock::time_point wall_start = Clock::now();
  // Each round replays the full stream concurrently. Duplicates whose
  // first copy is still in flight coalesce onto the running leader; the
  // round barrier lets fully completed rounds serve later ones from the
  // frontier cache.
  for (int round = 0; round < repeat; ++round) {
    std::vector<std::unique_ptr<Track>> tracks;
    for (const Query& query : stream) {
      auto track = std::make_unique<Track>();
      track->name = query.name;
      track->submitted = Clock::now();
      Track* t = track.get();
      StatusOr<QueryId> id = service.Submit(
          query, submit, [t](QueryId, const FrontierSnapshot&) {
            if (!t->first_seen.exchange(true)) {
              t->ttff_ms.store(MillisSince(t->submitted));
            }
          });
      if (!id.ok()) {
        std::fprintf(stderr, "submit %s failed: %s\n", query.name.c_str(),
                     id.status().ToString().c_str());
        continue;
      }
      track->id = id.value();
      tracks.push_back(std::move(track));
    }
    for (const auto& t : tracks) {
      const QueryResult result = service.Wait(t->id);
      ++total_queries;
      char ttff_text[32] = "-";  // No frontier (e.g. expired unstarted).
      if (t->first_seen.load()) {
        const double ttff = t->ttff_ms.load();
        ttffs.push_back(ttff);  // Only real frontiers enter the stats.
        std::snprintf(ttff_text, sizeof(ttff_text), "%.3f", ttff);
      }
      std::printf("%-10s %-10s %6d %6zu %10s %8s %6s\n", t->name.c_str(),
                  StateName(result.state), result.iterations,
                  result.frontier.plans.size(), ttff_text,
                  result.from_cache ? "yes" : "no",
                  result.coalesced ? "yes" : "no");
    }
  }
  const double wall_s = MillisSince(wall_start) / 1000.0;

  const ServiceStats stats = service.stats();
  std::printf("\n%zu queries in %.3f s = %.1f queries/sec\n", total_queries,
              wall_s,
              total_queries == 0 ? 0.0 : total_queries / wall_s);
  std::printf("time to first frontier (%zu with frontiers): p50 %.3f ms, "
              "p99 %.3f ms\n",
              ttffs.size(), Percentile(ttffs, 0.50),
              Percentile(ttffs, 0.99));
  std::printf("steps %llu, completed %llu, expired %llu, cache hits %llu, "
              "coalesced %llu, work steals %llu\n",
              static_cast<unsigned long long>(stats.steps_executed),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.expired),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.work_steals));
  return 0;
}
