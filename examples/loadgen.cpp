// loadgen — TCP load generator for optimizerd.
//
// Opens N concurrent client sessions (one connection + one thread each),
// submits random TPC-H join queries with snapshot streaming, and reports
// time-to-first-frontier percentiles plus the admission-taxonomy counts
// (shed / quota / drain) the server returned. The overload tool for the
// serving stack: crank --sessions past the server's --max-inflight and
// watch kShedding with retry-after hints instead of queue collapse.
//
// Usage:
//   ./build/loadgen --port P [--host H] [--sessions N] [--queries M]
//                   [--tenants T] [--priority P] [--deadline-ms D]
//                   [--max-iterations K] [--retries R] [--seed S] [--json] [--digest]
//
//   --port P        server port (required)
//   --host H        server address (default 127.0.0.1)
//   --sessions N    concurrent connections (default 8)
//   --queries M     queries per session (default 4)
//   --tenants T     spread sessions across T tenant names "t0".."t{T-1}"
//                   (default 1)
//   --priority P    per-query priority (default 1)
//   --deadline-ms D per-query deadline (default none)
//   --max-iterations K  session steps per query (default 0 = schedule)
//   --retries R     max resubmits after kShedding, honoring the server's
//                   retry-after hint (default 3)
//   --seed S        workload seed (default 1)
//   --json          emit one machine-readable JSON summary line
//   --digest        print one "loadgen-digest: NAME HEX" line per query
//                   that finished kDone: an order-insensitive FNV-1a over
//                   the final frontier's exact cost bits, order tags, and
//                   resolutions. Two runs against equivalent servers must
//                   produce identical digest sets — the bit-identity
//                   probe tests/optimizerd_smoke.sh uses to compare a
//                   crash-recovered warm store against a cold run
//
// Exit status: 0 when every query either finished or was rejected with a
// taxonomy code; 1 on any protocol/transport error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch.h"
#include "net/client.h"
#include "query/query.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/str.h"

using namespace moqo;

namespace {

using Clock = std::chrono::steady_clock;

// A random chain join over the 8 TPC-H base tables. Selectivities are
// seeded, so distinct (session, index) pairs yield distinct canonical
// queries — the workload exercises real optimization, not just the
// frontier cache.
Query MakeQuery(Rng* rng, int session, int index) {
  const int num_tables = 3 + static_cast<int>(rng->Uniform(4));  // 3..6
  QueryBuilder b("lg_s" + std::to_string(session) + "_q" +
                 std::to_string(index));
  for (int i = 0; i < num_tables; ++i) {
    b.AddTable(static_cast<TableId>(rng->Uniform(8)),
               rng->UniformDouble(0.05, 1.0));
  }
  for (int i = 1; i < num_tables; ++i) {
    b.AddJoin(i - 1, i, rng->UniformDouble(1e-6, 0.1));
  }
  return b.Build();
}

// Order-insensitive digest of a final frontier's exact content: each
// plan renders to hex cost bits + order + resolution, the rows are
// sorted (frontier iteration order is not part of the bit-identity
// contract), and the concatenation is FNV-1a hashed.
uint64_t FrontierDigest(const FrontierSnapshot& frontier) {
  std::vector<std::string> rows;
  rows.reserve(frontier.plans.size());
  for (const CellIndex::Entry& e : frontier.plans) {
    std::string row;
    for (int i = 0; i < e.cost.dims(); ++i) {
      AppendHexDouble(&row, e.cost[i]);
      row += ',';
    }
    row += '|';
    row += std::to_string(static_cast<int>(e.order));
    row += '|';
    row += std::to_string(static_cast<int>(e.resolution));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string all;
  for (const std::string& row : rows) {
    all += row;
    all += ';';
  }
  return Fnv1a64(all);
}

struct SessionTally {
  uint64_t ok = 0;
  uint64_t shed = 0;           // kShedding rejections observed.
  uint64_t quota = 0;          // kQuotaExceeded rejections.
  uint64_t drain = 0;          // kDraining rejections.
  uint64_t invalid = 0;        // kInvalidArgument rejections.
  uint64_t transport_errors = 0;
  uint64_t snapshots = 0;
  uint64_t gaps = 0;  // Snapshot events lost to drop-oldest (from markers).
  std::vector<double> ttff_ms;
  // (query name, frontier digest) per kDone query; see --digest.
  std::vector<std::pair<std::string, uint64_t>> digests;
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int sessions = 8;
  int queries = 4;
  int tenants = 1;
  int priority = 1;
  double deadline_ms = 0.0;
  int max_iterations = 0;
  int retries = 3;
  uint64_t seed = 1;
  bool json = false;
  bool digest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--sessions") {
      sessions = std::atoi(next());
    } else if (arg == "--queries") {
      queries = std::atoi(next());
    } else if (arg == "--tenants") {
      tenants = std::atoi(next());
    } else if (arg == "--priority") {
      priority = std::atoi(next());
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next());
    } else if (arg == "--max-iterations") {
      max_iterations = std::atoi(next());
    } else if (arg == "--retries") {
      retries = std::atoi(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--digest") {
      digest = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }

  std::vector<SessionTally> tallies(static_cast<size_t>(sessions));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(sessions));
  const Clock::time_point wall_start = Clock::now();

  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      SessionTally& tally = tallies[static_cast<size_t>(s)];
      Rng rng(seed * 1000003 + static_cast<uint64_t>(s));
      net::OptimizerClient client;
      Status st = client.Connect(host, static_cast<uint16_t>(port));
      if (!st.ok()) {
        // A draining/over-capacity server refuses at the handshake —
        // taxonomy, not a transport error.
        if (st.code() == StatusCode::kDraining) {
          tally.drain += static_cast<uint64_t>(queries);
        } else if (st.code() == StatusCode::kShedding) {
          tally.shed += static_cast<uint64_t>(queries);
        } else {
          ++tally.transport_errors;
        }
        return;
      }
      for (int q = 0; q < queries; ++q) {
        SubmitRequest request;
        request.query = MakeQuery(&rng, s, q);
        request.tenant = "t" + std::to_string(s % std::max(1, tenants));
        request.priority = priority;
        request.deadline_ms = deadline_ms;
        request.max_iterations = max_iterations;
        request.subscribe = true;
        const Clock::time_point t0 = Clock::now();
        StatusOr<SubmitResponse> submitted = client.Submit(request);
        for (int attempt = 0;
             !submitted.ok() &&
             submitted.status().code() == StatusCode::kShedding &&
             attempt < retries;
             ++attempt) {
          ++tally.shed;
          const uint64_t hint = submitted.status().retry_after_ms();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::min<uint64_t>(
                  hint > 0 ? hint : 1, 250)));
          submitted = client.Submit(request);
        }
        if (!submitted.ok()) {
          switch (submitted.status().code()) {
            case StatusCode::kShedding:
              ++tally.shed;
              break;
            case StatusCode::kQuotaExceeded:
              ++tally.quota;
              break;
            case StatusCode::kDraining:
              ++tally.drain;
              break;
            case StatusCode::kInvalidArgument:
              ++tally.invalid;
              break;
            default:
              ++tally.transport_errors;
              break;
          }
          if (!client.connected()) return;
          continue;
        }
        const QueryId id = submitted.value().id;
        StatusOr<bool> first = client.WaitSnapshot(id);
        if (!first.ok()) {
          ++tally.transport_errors;
          return;
        }
        tally.ttff_ms.push_back(MillisSince(t0));
        StatusOr<QueryResult> result = client.Wait(id);
        if (!result.ok()) {
          ++tally.transport_errors;
          return;
        }
        if (digest && result.value().state == QueryState::kDone) {
          tally.digests.emplace_back(request.query.name,
                                     FrontierDigest(result.value().frontier));
        }
        for (const net::SnapshotMsg& msg : client.TakeSnapshots(id)) {
          ++tally.snapshots;
          tally.gaps += msg.dropped;
        }
        ++tally.ok;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      MillisSince(wall_start) / 1000.0;

  SessionTally total;
  for (const SessionTally& t : tallies) {
    total.ok += t.ok;
    total.shed += t.shed;
    total.quota += t.quota;
    total.drain += t.drain;
    total.invalid += t.invalid;
    total.transport_errors += t.transport_errors;
    total.snapshots += t.snapshots;
    total.gaps += t.gaps;
    total.ttff_ms.insert(total.ttff_ms.end(), t.ttff_ms.begin(),
                         t.ttff_ms.end());
  }
  const double p50 = Percentile(total.ttff_ms, 0.50);
  const double p99 = Percentile(total.ttff_ms, 0.99);

  if (digest) {
    std::vector<std::pair<std::string, uint64_t>> all;
    for (const SessionTally& t : tallies) {
      all.insert(all.end(), t.digests.begin(), t.digests.end());
    }
    std::sort(all.begin(), all.end());
    for (const auto& [name, d] : all) {
      std::printf("loadgen-digest: %s %016llx\n", name.c_str(),
                  static_cast<unsigned long long>(d));
    }
  }

  if (json) {
    std::printf(
        "{\"sessions\":%d,\"queries_per_session\":%d,\"ok\":%llu,"
        "\"shed\":%llu,\"quota\":%llu,\"drain\":%llu,\"invalid\":%llu,"
        "\"transport_errors\":%llu,\"snapshots\":%llu,\"gaps\":%llu,"
        "\"ttff_p50_ms\":%.3f,\"ttff_p99_ms\":%.3f,\"wall_s\":%.3f,"
        "\"qps\":%.1f}\n",
        sessions, queries, static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.shed),
        static_cast<unsigned long long>(total.quota),
        static_cast<unsigned long long>(total.drain),
        static_cast<unsigned long long>(total.invalid),
        static_cast<unsigned long long>(total.transport_errors),
        static_cast<unsigned long long>(total.snapshots),
        static_cast<unsigned long long>(total.gaps), p50, p99, wall_s,
        wall_s > 0 ? static_cast<double>(total.ok) / wall_s : 0.0);
  } else {
    std::printf(
        "loadgen: %d sessions x %d queries against %s:%d\n"
        "  finished %llu, shed %llu, quota %llu, drain %llu, invalid %llu, "
        "transport errors %llu\n"
        "  snapshots %llu (gap-dropped %llu), ttff p50 %.2f ms, p99 %.2f ms, "
        "%.2f s wall, %.1f q/s\n",
        sessions, queries, host.c_str(), port,
        static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.shed),
        static_cast<unsigned long long>(total.quota),
        static_cast<unsigned long long>(total.drain),
        static_cast<unsigned long long>(total.invalid),
        static_cast<unsigned long long>(total.transport_errors),
        static_cast<unsigned long long>(total.snapshots),
        static_cast<unsigned long long>(total.gaps), p50, p99, wall_s,
        wall_s > 0 ? static_cast<double>(total.ok) / wall_s : 0.0);
  }
  return total.transport_errors == 0 ? 0 : 1;
}
