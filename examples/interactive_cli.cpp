// Interactive MOQO command-line session — the closest thing to the
// paper's Figure 1 interface a terminal offers.
//
// Usage:
//   ./build/interactive_cli [--threads N] [tpch-block-name]   (default: q5)
//
// --threads N runs the optimizer's phase-2 enumeration on N threads (the
// frontier is identical to the single-threaded run, just produced faster
// on multi-core machines).
//
// Commands (read from stdin):
//   step               run one optimizer invocation and refine resolution
//   bound <m> <value>  set an upper bound on metric index m (0-based)
//   unbound <m>        remove the bound on metric m
//   show               re-print the current frontier plot and table
//   plan <row>         print the plan tree of a frontier row
//   select <row>       choose a plan and exit
//   quit               exit without selecting
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"
#include "viz/frontier_view.h"

using namespace moqo;

namespace {

std::vector<CellIndex::Entry> SortedByTime(
    std::vector<CellIndex::Entry> plans) {
  std::sort(plans.begin(), plans.end(),
            [](const CellIndex::Entry& a, const CellIndex::Entry& b) {
              return a.cost[0] < b.cost[0];
            });
  return plans;
}

void Show(const IamaSession& session, const MetricSchema& schema) {
  const auto plans = SortedByTime(session.optimizer().ResultPlans(
      session.bounds(), session.resolution()));
  std::printf("%s", RenderScatter(plans, schema, session.bounds()).c_str());
  std::printf("%s", RenderTable(plans, schema, 20).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string block_name = "q5";
  int num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc || (num_threads = std::atoi(argv[++i])) < 1) {
        std::fprintf(stderr,
                     "usage: interactive_cli [--threads N] [block]\n");
        return 1;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown flag '%s'\n"
                   "usage: interactive_cli [--threads N] [block]\n",
                   arg.c_str());
      return 1;
    } else {
      block_name = arg;
    }
  }
  const Catalog catalog = MakeTpchCatalog();
  Query query;
  bool found = false;
  for (const Query& q : TpchQueryBlocks(catalog)) {
    if (q.name == block_name) {
      query = q;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown TPC-H block '%s'\n", block_name.c_str());
    return 1;
  }

  const MetricSchema schema = MetricSchema::Standard3();
  const PlanFactory factory(query, catalog, schema);
  IamaOptions options;
  options.schedule = ResolutionSchedule(12, 1.01, 0.2);
  options.optimizer.num_threads = num_threads;
  IamaSession session(factory, options);

  std::printf(
      "interactive MOQO on TPC-H %s (%d tables, %d threads); metrics: %s\n",
      query.name.c_str(), query.NumTables(), num_threads,
      schema.ToString().c_str());
  std::printf("commands: step | bound <m> <v> | unbound <m> | show | "
              "plan <row> | select <row> | quit\n\n");

  CostVector bounds = session.bounds();
  FrontierSnapshot snap = session.Step();
  std::printf("[iteration %d, alpha=%.4f]\n", snap.iteration, snap.alpha);
  Show(session, schema);

  std::string line;
  while (std::printf("moqo> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit") break;
    if (cmd == "step") {
      session.ApplyAction(UserAction::Continue());
      snap = session.Step();
      std::printf("[iteration %d, alpha=%.4f]\n", snap.iteration,
                  snap.alpha);
      Show(session, schema);
    } else if (cmd == "bound" || cmd == "unbound") {
      int metric = -1;
      in >> metric;
      if (metric < 0 || metric >= schema.dims()) {
        std::printf("metric index must be in [0, %d)\n", schema.dims());
        continue;
      }
      double value = std::numeric_limits<double>::infinity();
      if (cmd == "bound" && !(in >> value)) {
        std::printf("usage: bound <metric> <value>\n");
        continue;
      }
      bounds[metric] = value;
      session.ApplyAction(UserAction::SetBounds(bounds));
      snap = session.Step();
      std::printf("[iteration %d, alpha=%.4f, resolution reset]\n",
                  snap.iteration, snap.alpha);
      Show(session, schema);
    } else if (cmd == "show") {
      Show(session, schema);
    } else if (cmd == "plan" || cmd == "select") {
      size_t row = 0;
      if (!(in >> row)) {
        std::printf("usage: %s <row>\n", cmd.c_str());
        continue;
      }
      const auto plans = SortedByTime(session.optimizer().ResultPlans(
          session.bounds(), session.resolution()));
      if (row >= plans.size()) {
        std::printf("row out of range (frontier has %zu plans)\n",
                    plans.size());
        continue;
      }
      std::printf("%s", PlanToTreeString(session.optimizer().arena(),
                                         plans[row].id, query)
                            .c_str());
      if (cmd == "select") {
        std::printf("selected plan %u — optimization finished.\n",
                    plans[row].id);
        return 0;
      }
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
    }
  }
  return 0;
}
