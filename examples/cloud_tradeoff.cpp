// Cloud scenario (paper Example 1 / Figure 1): query plans trade execution
// time against monetary fees — buying more parallel resources speeds up
// execution but costs more. A scripted "user" watches the refining Pareto
// frontier, drags the fee bound tighter, lets the optimizer re-focus, and
// finally selects the fastest plan within budget.
//
// The frontier is rendered as ASCII scatter plots, mirroring the
// interactive visualization the paper proposes.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"
#include "viz/frontier_view.h"

using namespace moqo;

namespace {

// Renders cost tradeoffs (time = x, fees = y) as an ASCII plot.
void Plot(const std::vector<CellIndex::Entry>& plans,
          const CostVector& bounds) {
  std::printf("%s", RenderScatter(plans, MetricSchema::Cloud2(), bounds)
                        .c_str());
}

}  // namespace

int main() {
  // Workload: the TPC-H Q3 block (customer ⋈ orders ⋈ lineitem), judged
  // by execution time and monetary fees.
  const Catalog catalog = MakeTpchCatalog();
  const auto blocks = TpchBlocksWithTables(catalog, 3);
  const Query& query = blocks.at(0);
  OperatorOptions op_options;
  op_options.max_workers = 8;  // A wide fee/time tradeoff space.
  op_options.max_sampling_rates_per_table = 0;  // Exact answers only.
  const PlanFactory factory(query, catalog, MetricSchema::Cloud2(),
                            CostModelParams{}, op_options);

  IamaOptions options;
  options.schedule = ResolutionSchedule(8, 1.01, 0.2);
  IamaSession session(factory, options);

  std::printf("=== Interactive cloud-tradeoff session on TPC-H %s ===\n",
              query.name.c_str());

  // Phase 1: watch the frontier refine for three steps.
  FrontierSnapshot snap;
  for (int i = 0; i < 3; ++i) {
    snap = session.Step();
    std::printf("\n[iteration %d, alpha=%.3f] %zu tradeoffs visible\n",
                snap.iteration, snap.alpha, snap.plans.size());
    Plot(snap.plans, snap.bounds);
    session.ApplyAction(UserAction::Continue());
  }

  // Phase 2: the user drags the fee bound to 60% of the observed range
  // (the deadline stays open). Resolution resets; refinement continues
  // inside the focused region.
  double min_fee = std::numeric_limits<double>::infinity(), max_fee = 0.0;
  for (const auto& e : snap.plans) {
    min_fee = std::min(min_fee, e.cost[1]);
    max_fee = std::max(max_fee, e.cost[1]);
  }
  CostVector budget = CostVector::Infinite(2);
  budget[1] = min_fee + 0.6 * (max_fee - min_fee);
  std::printf("\n>>> user drags fee bound to %.3g cents\n", budget[1]);
  session.ApplyAction(UserAction::SetBounds(budget));

  for (int i = 0; i < 3; ++i) {
    snap = session.Step();
    std::printf("\n[iteration %d, alpha=%.3f] %zu tradeoffs within "
                "budget\n", snap.iteration, snap.alpha, snap.plans.size());
    Plot(snap.plans, snap.bounds);
    session.ApplyAction(UserAction::Continue());
  }

  // Phase 3: select the fastest plan within budget.
  const CellIndex::Entry* choice = nullptr;
  for (const auto& e : snap.plans) {
    if (choice == nullptr || e.cost[0] < choice->cost[0]) choice = &e;
  }
  if (choice != nullptr) {
    std::printf("\n>>> user selects the fastest in-budget plan:\n");
    std::printf("%s", PlanToTreeString(session.optimizer().arena(),
                                       choice->id, query)
                          .c_str());
  }
  return 0;
}
