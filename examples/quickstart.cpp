// Quickstart: optimize a three-table join with three cost metrics and
// print the refined Pareto frontier after each anytime step.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/iama.h"
#include "plan/plan_printer.h"

using namespace moqo;

int main() {
  // 1. Describe the data: a small star schema.
  Catalog catalog;
  const TableId sales = catalog.AddTable({"sales", 5000000.0, 120.0, true});
  const TableId customers =
      catalog.AddTable({"customers", 200000.0, 180.0, true});
  const TableId stores = catalog.AddTable({"stores", 500.0, 90.0, true});

  // 2. Describe the query: sales ⋈ customers ⋈ stores with a predicate
  //    on customers.
  QueryBuilder builder("quickstart");
  const int s = builder.AddTable(sales, 1.0, "s");
  const int c = builder.AddTable(customers, 0.1, "c");
  const int st = builder.AddTable(stores, 1.0, "st");
  builder.AddFkJoin(catalog, s, c);   // sales.customer_id = customers.id
  builder.AddFkJoin(catalog, s, st);  // sales.store_id = stores.id
  const Query query = builder.Build();

  // 3. Pick the cost metrics: execution time, reserved cores, precision
  //    error (the paper's evaluation schema), and build the plan factory.
  const PlanFactory factory(query, catalog, MetricSchema::Standard3());

  // 4. Run the interactive anytime loop without user input: each step
  //    refines the approximation of the Pareto-optimal cost tradeoffs.
  IamaOptions options;
  options.schedule = ResolutionSchedule(/*num_levels=*/5,
                                        /*alpha_target=*/1.01,
                                        /*alpha_step=*/0.1);
  IamaSession session(factory, options);
  NoInteractionPolicy policy;
  session.Run(&policy, options.schedule.NumLevels(),
              [&](const FrontierSnapshot& snap) {
                std::printf(
                    "step %d (alpha=%.3f): %zu Pareto tradeoffs\n",
                    snap.iteration, snap.alpha, snap.plans.size());
              });

  // 5. Inspect the final frontier and print one plan in full.
  const FrontierSnapshot final_snapshot{
      0, session.resolution(), 0.0, session.bounds(),
      session.optimizer().ResultPlans(session.bounds(),
                                      session.resolution())};
  std::printf("\nfinal frontier (time ms, cores, precision error):\n");
  for (const auto& entry : final_snapshot.plans) {
    std::printf("  %s  <- %s\n", entry.cost.ToString().c_str(),
                PlanToString(session.optimizer().arena(), entry.id, query)
                    .c_str());
  }
  return 0;
}
