// Approximate query processing scenario (paper Example 2): sampling scans
// trade execution time against result precision. The example optimizes a
// large TPC-H join, prints the time/precision frontier, and shows which
// plan a user would pick under three different deadlines.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"

using namespace moqo;

int main() {
  const Catalog catalog = MakeTpchCatalog();
  // lineitem ⋈ part (TPC-H Q14): 6M-row fact table, ideal for sampling.
  const auto blocks = TpchBlocksWithTables(catalog, 2);
  const Query* q14 = nullptr;
  for (const Query& q : blocks) {
    if (q.name == "q14") q14 = &q;
  }
  if (q14 == nullptr) {
    std::fprintf(stderr, "q14 not found\n");
    return 1;
  }

  OperatorOptions op_options;
  op_options.max_sampling_rates_per_table = 5;  // Deep sampling ladder.
  op_options.max_workers = 2;
  const PlanFactory factory(*q14, catalog, MetricSchema::Approx2(),
                            CostModelParams{}, op_options);

  IamaOptions options;
  options.schedule = ResolutionSchedule(10, 1.005, 0.3);
  IamaSession session(factory, options);
  NoInteractionPolicy policy;
  FrontierSnapshot last;
  session.Run(&policy, 10, [&](const FrontierSnapshot& s) { last = s; });

  // Sort the frontier by time and print the tradeoff table.
  std::vector<CellIndex::Entry> plans = last.plans;
  std::sort(plans.begin(), plans.end(),
            [](const CellIndex::Entry& a, const CellIndex::Entry& b) {
              return a.cost[0] < b.cost[0];
            });
  std::printf("=== time / precision tradeoffs for TPC-H %s ===\n\n",
              q14->name.c_str());
  std::printf("%14s %18s   plan\n", "time(ms)", "precision err");
  for (const auto& e : plans) {
    std::printf("%14.2f %18.5f   %s\n", e.cost[0], e.cost[1],
                PlanToString(session.optimizer().arena(), e.id, *q14)
                    .c_str());
  }

  // Pick plans under three deadlines: generous, tight, interactive.
  for (double deadline_ms : {1e9, 5000.0, 500.0}) {
    const CellIndex::Entry* best = nullptr;
    for (const auto& e : plans) {
      if (e.cost[0] > deadline_ms) continue;
      if (best == nullptr || e.cost[1] < best->cost[1]) best = &e;
    }
    std::printf("\ndeadline %.0f ms -> ", deadline_ms);
    if (best == nullptr) {
      std::printf("no plan meets the deadline\n");
    } else {
      std::printf("error %.5f, time %.2f ms:\n%s", best->cost[1],
                  best->cost[0],
                  PlanToTreeString(session.optimizer().arena(), best->id,
                                   *q14)
                      .c_str());
    }
  }
  return 0;
}
