// TPC-H explorer: runs the incremental anytime optimizer on every TPC-H
// query block with at least one join (the paper's evaluation workload) and
// prints per-block statistics: frontier size per resolution step, plans
// generated, optimizer state sizes, and cumulative optimization time.
#include <chrono>
#include <cstdio>

#include "catalog/tpch.h"
#include "core/iama.h"
#include "query/tpch_queries.h"

using namespace moqo;

int main() {
  const Catalog catalog = MakeTpchCatalog();
  IamaOptions options;
  options.schedule = ResolutionSchedule(5, 1.01, 0.1);

  std::printf("%-8s %-7s %10s %10s %10s %12s %12s %10s\n", "block",
              "tables", "frontier0", "frontierF", "plans", "res_entries",
              "cand_entries", "total_ms");
  for (const Query& query : TpchQueryBlocks(catalog)) {
    const PlanFactory factory(query, catalog, MetricSchema::Standard3());
    const auto start = std::chrono::steady_clock::now();
    IamaSession session(factory, options);
    NoInteractionPolicy policy;
    size_t frontier_first = 0, frontier_final = 0;
    session.Run(&policy, options.schedule.NumLevels(),
                [&](const FrontierSnapshot& s) {
                  if (s.iteration == 1) frontier_first = s.plans.size();
                  frontier_final = s.plans.size();
                });
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    const IncrementalOptimizer& opt = session.optimizer();
    std::printf("%-8s %-7d %10zu %10zu %10zu %12zu %12zu %10.2f\n",
                query.name.c_str(), query.NumTables(), frontier_first,
                frontier_final, opt.arena().size(), opt.NumResultEntries(),
                opt.NumCandidateEntries(), ms);
  }
  return 0;
}
